//! A capacity-bounded GPU TLB model with FIFO replacement.
//!
//! The TLB caches recently used GPU page-table entries. Accesses to pages
//! with a translation still pay a small page-table-walk cost on a TLB miss;
//! when a working set exceeds the TLB capacity the miss rate climbs
//! (the paper attributes the S128 Eager Maps variance to TLB thrashing).

use std::collections::{HashSet, VecDeque};

/// GPU translation lookaside buffer.
#[derive(Debug)]
pub struct Tlb {
    capacity: usize,
    present: HashSet<u64>,
    fifo: VecDeque<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Tlb {
    /// Create a new instance.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB must have at least one entry");
        Tlb {
            capacity,
            present: HashSet::with_capacity(capacity),
            fifo: VecDeque::with_capacity(capacity),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of identical servers in the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// TLB hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// TLB misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted at capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look up `vpage`; on a miss, install it (the walker refills the TLB).
    /// Returns true on a hit.
    pub fn access(&mut self, vpage: u64) -> bool {
        if self.present.contains(&vpage) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        self.insert(vpage);
        false
    }

    fn insert(&mut self, vpage: u64) {
        if self.present.len() == self.capacity {
            if let Some(victim) = self.fifo.pop_front() {
                self.present.remove(&victim);
                self.evictions += 1;
            }
        }
        if self.present.insert(vpage) {
            self.fifo.push_back(vpage);
        }
    }

    /// Drop an entry (page unmapped from the GPU page table).
    pub fn invalidate(&mut self, vpage: u64) {
        if self.present.remove(&vpage) {
            self.fifo.retain(|&p| p != vpage);
        }
    }

    /// Drop everything (full shootdown).
    pub fn flush(&mut self) {
        self.present.clear();
        self.fifo.clear();
    }

    /// Fraction of accesses that missed.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_install() {
        let mut t = Tlb::new(4);
        assert!(!t.access(1));
        assert!(t.access(1));
        assert_eq!((t.hits(), t.misses()), (1, 1));
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.access(2);
        t.access(3); // evicts 1
        assert_eq!(t.evictions(), 1);
        assert!(!t.access(1)); // miss again
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn thrashing_working_set_never_hits() {
        let mut t = Tlb::new(8);
        // Cyclic sweep over a working set larger than capacity: all misses.
        for _ in 0..3 {
            for p in 0..16u64 {
                t.access(p);
            }
        }
        assert_eq!(t.hits(), 0);
        assert!((t.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fitting_working_set_hits_after_warmup() {
        let mut t = Tlb::new(16);
        for _ in 0..3 {
            for p in 0..8u64 {
                t.access(p);
            }
        }
        assert_eq!(t.misses(), 8);
        assert_eq!(t.hits(), 16);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut t = Tlb::new(4);
        t.access(1);
        t.access(2);
        t.invalidate(1);
        assert_eq!(t.len(), 1);
        assert!(!t.access(1));
        t.flush();
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = Tlb::new(0);
    }
}
