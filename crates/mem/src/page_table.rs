//! Page tables for CPU and GPU agents.
//!
//! Both agents translate the same virtual addresses against their own table.
//! On the APU the CPU table is populated by the OS allocator; the GPU table
//! is populated either in bulk (pool allocations / host-side prefaulting) or
//! page-by-page by the XNACK replay protocol on first GPU touch.
//!
//! Storage is extent-based: instead of one hash entry per page, the table
//! keeps sorted, coalesced `[start_vpage, start_vpage + len)` extents, each
//! with the physical base of its first page and physically contiguous pages
//! after it. Real allocations map page-aligned, physically contiguous spans,
//! so a table over a multi-GiB heap holds a handful of extents rather than
//! millions of hash entries; range operations run in O(extents touched ·
//! log extents) instead of O(pages). The `inserts`/`removes` lifetime
//! counters still advance exactly as if pages were mapped one by one, so
//! every consumer of those statistics sees identical values.

use crate::addr::{AddrRange, PageSize, PhysAddr, VirtAddr};
use std::collections::BTreeMap;

/// One physically contiguous mapping of `len` virtual pages.
#[derive(Debug, Clone, Copy)]
struct Extent {
    /// Number of pages.
    len: u64,
    /// Physical base of the extent's first page.
    phys: PhysAddr,
}

/// One agent's logical-to-physical page mapping.
#[derive(Debug)]
pub struct PageTable {
    /// Start virtual page index -> extent. Invariant: extents are disjoint
    /// and maximally coalesced (adjacent extents with contiguous physical
    /// addresses are merged).
    extents: BTreeMap<u64, Extent>,
    /// Bytes per page; fixes the virtual-page-to-physical-offset stride.
    page_bytes: u64,
    /// Net mapped pages.
    pages: u64,
    inserts: u64,
    removes: u64,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::with_page_size(PageSize::Small)
    }
}

impl PageTable {
    /// Create a new instance with 4 KiB pages.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a new instance with the given page granularity.
    pub fn with_page_size(ps: PageSize) -> Self {
        PageTable {
            extents: BTreeMap::new(),
            page_bytes: ps.bytes(),
            pages: 0,
            inserts: 0,
            removes: 0,
        }
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.pages as usize
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Number of stored extents (bookkeeping granularity, not page count).
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Lifetime count of page insertions (not net).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Lifetime count of page removals.
    pub fn removes(&self) -> u64 {
        self.removes
    }

    #[inline]
    /// True when the item lies inside.
    pub fn contains(&self, vpage: u64) -> bool {
        self.translate_page(vpage).is_some()
    }

    #[inline]
    /// Physical base of `vpage`, if mapped.
    pub fn translate_page(&self, vpage: u64) -> Option<PhysAddr> {
        let (&start, ext) = self.extents.range(..=vpage).next_back()?;
        if vpage < start + ext.len {
            Some(ext.phys.offset((vpage - start) * self.page_bytes))
        } else {
            None
        }
    }

    /// Translate a byte address. Returns the physical address or `None` if
    /// the page has no entry.
    pub fn translate(&self, addr: VirtAddr, ps: PageSize) -> Option<PhysAddr> {
        let bytes = ps.bytes();
        debug_assert_eq!(bytes, self.page_bytes, "page size mismatch");
        let vpage = addr.as_u64() / bytes;
        let off = addr.as_u64() % bytes;
        self.translate_page(vpage).map(|p| p.offset(off))
    }

    /// Insert an entry; returns true if the page was newly mapped.
    pub fn map_page(&mut self, vpage: u64, phys: PhysAddr) -> bool {
        self.map_pages(vpage, 1, phys) == 1
    }

    /// Map `count` virtually and physically contiguous pages starting at
    /// `first`, with `phys_base` backing the first page. Pages already mapped
    /// are re-pointed at the new physical location without counting as
    /// inserts (matching per-page overwrite semantics). Returns how many
    /// pages were newly mapped.
    pub fn map_pages(&mut self, first: u64, count: u64, phys_base: PhysAddr) -> u64 {
        if count == 0 {
            return 0;
        }
        // Clear the landing zone; overwrites are not removals.
        let overwritten: u64 = self.carve(first, count).iter().map(|&(_, l)| l).sum();
        self.insert_extent(first, count, phys_base);
        let newly = count - overwritten;
        self.pages += newly;
        self.inserts += newly;
        newly
    }

    /// Map a contiguous virtual range to a contiguous physical range.
    pub fn map_range(&mut self, range: AddrRange, phys_base: PhysAddr, ps: PageSize) -> u64 {
        let bytes = ps.bytes();
        debug_assert!(range.start.is_aligned(bytes), "range must be page aligned");
        debug_assert_eq!(bytes, self.page_bytes, "page size mismatch");
        if range.is_empty() {
            return 0;
        }
        let first = range.start.as_u64() / bytes;
        let count = ps.pages_covering(range.start, range.len);
        self.map_pages(first, count, phys_base)
    }

    /// Remove an entry; returns true if it existed.
    pub fn unmap_page(&mut self, vpage: u64) -> bool {
        !self.unmap_pages(vpage, 1).is_empty()
    }

    /// Unmap every mapped page of `[first, first + count)`. Returns the
    /// previously mapped sub-runs `(start_vpage, len)` in ascending order.
    pub fn unmap_pages(&mut self, first: u64, count: u64) -> Vec<(u64, u64)> {
        let removed = self.carve(first, count);
        let pages: u64 = removed.iter().map(|&(_, l)| l).sum();
        self.pages -= pages;
        self.removes += pages;
        removed
    }

    /// Remove all entries covering `range`; returns how many were present.
    pub fn unmap_range(&mut self, range: AddrRange, ps: PageSize) -> u64 {
        debug_assert_eq!(ps.bytes(), self.page_bytes, "page size mismatch");
        if range.is_empty() {
            return 0;
        }
        let first = range.start.as_u64() / ps.bytes();
        let count = ps.pages_covering(range.start, range.len);
        self.unmap_pages(first, count).iter().map(|&(_, l)| l).sum()
    }

    /// Count pages of `range` with and without entries: `(present, missing)`.
    pub fn presence(&self, range: AddrRange, ps: PageSize) -> (u64, u64) {
        debug_assert_eq!(ps.bytes(), self.page_bytes, "page size mismatch");
        if range.is_empty() {
            return (0, 0);
        }
        let first = range.start.as_u64() / ps.bytes();
        let count = ps.pages_covering(range.start, range.len);
        let present = self.count_in(first, count);
        (present, count - present)
    }

    /// True when every page of `range` is mapped.
    pub fn contains_range(&self, range: AddrRange, ps: PageSize) -> bool {
        debug_assert_eq!(ps.bytes(), self.page_bytes, "page size mismatch");
        if range.is_empty() {
            return true;
        }
        let first = range.start.as_u64() / ps.bytes();
        let count = ps.pages_covering(range.start, range.len);
        self.first_missing(first, count).is_none()
    }

    /// Lowest unmapped page in `[first, first + count)`, if any.
    pub fn first_missing(&self, first: u64, count: u64) -> Option<u64> {
        let end = first + count;
        let mut pos = first;
        while pos < end {
            let (mapped, run_end) = self.span_at(pos, end);
            if !mapped {
                return Some(pos);
            }
            pos = run_end;
        }
        None
    }

    /// Number of mapped pages inside `[first, first + count)`.
    pub fn count_in(&self, first: u64, count: u64) -> u64 {
        if count == 0 {
            return 0;
        }
        let end = first + count;
        let mut n = 0;
        for (&s, ext) in self.extents.range(..end).rev() {
            if s + ext.len <= first {
                break;
            }
            n += (s + ext.len).min(end) - s.max(first);
        }
        n
    }

    /// Classify position `pos` within `[pos, end)`: returns `(mapped,
    /// run_end)` where every page of `[pos, run_end)` shares the mapped
    /// status, and `run_end <= end`.
    pub fn span_at(&self, pos: u64, end: u64) -> (bool, u64) {
        debug_assert!(pos < end);
        if let Some((&s, ext)) = self.extents.range(..=pos).next_back() {
            if pos < s + ext.len {
                return (true, (s + ext.len).min(end));
            }
        }
        match self.extents.range(pos..).next() {
            Some((&s, _)) => (false, s.min(end)),
            None => (false, end),
        }
    }

    /// Remove every extent page inside `[first, first + count)`, splitting
    /// boundary extents. Returns removed sub-runs ascending. Counters are
    /// untouched: callers decide whether a carve is a removal or an
    /// overwrite.
    fn carve(&mut self, first: u64, count: u64) -> Vec<(u64, u64)> {
        if count == 0 {
            return Vec::new();
        }
        let end = first + count;
        let mut touched: Vec<(u64, Extent)> = Vec::new();
        for (&s, ext) in self.extents.range(..end).rev() {
            if s + ext.len <= first {
                break;
            }
            touched.push((s, *ext));
        }
        let mut removed = Vec::with_capacity(touched.len());
        for (s, ext) in touched {
            self.extents.remove(&s);
            let cut_start = s.max(first);
            let cut_end = (s + ext.len).min(end);
            removed.push((cut_start, cut_end - cut_start));
            if s < cut_start {
                self.extents.insert(
                    s,
                    Extent {
                        len: cut_start - s,
                        phys: ext.phys,
                    },
                );
            }
            if cut_end < s + ext.len {
                self.extents.insert(
                    cut_end,
                    Extent {
                        len: s + ext.len - cut_end,
                        phys: ext.phys.offset((cut_end - s) * self.page_bytes),
                    },
                );
            }
        }
        removed.sort_unstable();
        removed
    }

    /// Insert an extent into a landing zone known to be clear, merging with
    /// physically contiguous neighbours.
    fn insert_extent(&mut self, mut start: u64, mut len: u64, mut phys: PhysAddr) {
        debug_assert!(len > 0);
        if let Some((&ls, lext)) = self.extents.range(..start).next_back() {
            if ls + lext.len == start && lext.phys.offset(lext.len * self.page_bytes) == phys {
                start = ls;
                len += lext.len;
                phys = lext.phys;
                self.extents.remove(&ls);
            }
        }
        if let Some((&rs, rext)) = self.extents.range(start + len..).next() {
            if start + len == rs && phys.offset(len * self.page_bytes) == rext.phys {
                len += rext.len;
                self.extents.remove(&rs);
            }
        }
        self.extents.insert(start, Extent { len, phys });
    }

    /// Iterate extents ascending as `(start_vpage, len, phys_base)`.
    pub fn extents(&self) -> impl Iterator<Item = (u64, u64, PhysAddr)> + '_ {
        self.extents.iter().map(|(&s, e)| (s, e.len, e.phys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: PageSize = PageSize::Small;

    #[test]
    fn map_translate_roundtrip() {
        let mut pt = PageTable::new();
        let r = AddrRange::new(VirtAddr(0x10000), 3 * 4096);
        let newly = pt.map_range(r, PhysAddr(0x100000), PS);
        assert_eq!(newly, 3);
        assert_eq!(pt.len(), 3);
        // Address in the middle of the second page.
        let p = pt.translate(VirtAddr(0x11010), PS).unwrap();
        assert_eq!(p.as_u64(), 0x101010);
        assert!(pt.translate(VirtAddr(0x14000), PS).is_none());
    }

    #[test]
    fn remapping_is_not_new() {
        let mut pt = PageTable::new();
        assert!(pt.map_page(5, PhysAddr(0)));
        assert!(!pt.map_page(5, PhysAddr(4096)));
        assert_eq!(pt.inserts(), 1);
        assert_eq!(pt.translate_page(5).unwrap().as_u64(), 4096);
    }

    #[test]
    fn unmap_range_counts() {
        let mut pt = PageTable::new();
        pt.map_range(AddrRange::new(VirtAddr(0), 4 * 4096), PhysAddr(0), PS);
        let removed = pt.unmap_range(AddrRange::new(VirtAddr(4096), 2 * 4096), PS);
        assert_eq!(removed, 2);
        assert_eq!(pt.len(), 2);
        assert_eq!(pt.removes(), 2);
        assert!(!pt.unmap_page(999));
    }

    #[test]
    fn presence_counts_split() {
        let mut pt = PageTable::new();
        pt.map_range(AddrRange::new(VirtAddr(0), 2 * 4096), PhysAddr(0), PS);
        let (present, missing) = pt.presence(AddrRange::new(VirtAddr(0), 5 * 4096), PS);
        assert_eq!((present, missing), (2, 3));
    }

    #[test]
    fn contiguous_mappings_coalesce_into_one_extent() {
        let mut pt = PageTable::new();
        // Page-by-page mapping of a physically contiguous span.
        for i in 0..64u64 {
            pt.map_page(100 + i, PhysAddr(0x8000_0000 + i * 4096));
        }
        assert_eq!(pt.extent_count(), 1);
        assert_eq!(pt.len(), 64);
        assert_eq!(pt.inserts(), 64);
        assert_eq!(
            pt.translate_page(163).unwrap().as_u64(),
            0x8000_0000 + 63 * 4096
        );
    }

    #[test]
    fn non_contiguous_phys_does_not_coalesce() {
        let mut pt = PageTable::new();
        pt.map_page(0, PhysAddr(0));
        pt.map_page(1, PhysAddr(0x10000)); // virtually adjacent, phys gap
        assert_eq!(pt.extent_count(), 2);
        assert_eq!(pt.translate_page(1).unwrap().as_u64(), 0x10000);
    }

    #[test]
    fn partial_unmap_splits_extent_with_correct_phys() {
        let mut pt = PageTable::new();
        pt.map_pages(10, 10, PhysAddr(0x1000_0000));
        let removed = pt.unmap_pages(13, 3);
        assert_eq!(removed, vec![(13, 3)]);
        assert_eq!(pt.extent_count(), 2);
        // Right-hand split keeps the per-page physical addresses.
        assert_eq!(
            pt.translate_page(16).unwrap().as_u64(),
            0x1000_0000 + 6 * 4096
        );
        assert_eq!(pt.removes(), 3);
        assert_eq!(pt.len(), 7);
    }

    #[test]
    fn overwrite_remap_repoints_span_without_insert_counts() {
        let mut pt = PageTable::new();
        pt.map_pages(0, 8, PhysAddr(0));
        // Remap the middle four pages somewhere else: 0 new pages.
        assert_eq!(pt.map_pages(2, 4, PhysAddr(0x4000_0000)), 0);
        assert_eq!(pt.inserts(), 8);
        assert_eq!(pt.removes(), 0);
        assert_eq!(pt.len(), 8);
        assert_eq!(pt.translate_page(3).unwrap().as_u64(), 0x4000_0000 + 4096);
        // Outer pages keep the original backing.
        assert_eq!(pt.translate_page(1).unwrap().as_u64(), 4096);
        assert_eq!(pt.translate_page(6).unwrap().as_u64(), 6 * 4096);
    }

    #[test]
    fn span_queries_classify_runs() {
        let mut pt = PageTable::new();
        pt.map_pages(4, 4, PhysAddr(0));
        assert_eq!(pt.span_at(0, 16), (false, 4));
        assert_eq!(pt.span_at(5, 16), (true, 8));
        assert_eq!(pt.first_missing(4, 4), None);
        assert_eq!(pt.first_missing(4, 5), Some(8));
        assert_eq!(pt.count_in(0, 16), 4);
        assert!(pt.contains_range(AddrRange::new(VirtAddr(4 * 4096), 4 * 4096), PS));
        assert!(!pt.contains_range(AddrRange::new(VirtAddr(4 * 4096), 5 * 4096), PS));
    }

    #[test]
    fn huge_page_stride_respected() {
        let mut pt = PageTable::with_page_size(PageSize::Huge);
        let hb = PageSize::Huge.bytes();
        pt.map_range(
            AddrRange::new(VirtAddr(0), 4 * hb),
            PhysAddr(0x1_0000_0000),
            PageSize::Huge,
        );
        assert_eq!(pt.extent_count(), 1);
        assert_eq!(
            pt.translate(VirtAddr(3 * hb + 17), PageSize::Huge)
                .unwrap()
                .as_u64(),
            0x1_0000_0000 + 3 * hb + 17
        );
    }
}
