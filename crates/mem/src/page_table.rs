//! Page tables for CPU and GPU agents.
//!
//! Both agents translate the same virtual addresses against their own table.
//! On the APU the CPU table is populated by the OS allocator; the GPU table
//! is populated either in bulk (pool allocations / host-side prefaulting) or
//! page-by-page by the XNACK replay protocol on first GPU touch.

use crate::addr::{AddrRange, PageSize, PhysAddr, VirtAddr};
use std::collections::HashMap;

/// One agent's logical-to-physical page mapping.
#[derive(Debug, Default)]
pub struct PageTable {
    /// Virtual page index -> physical base address of that page.
    entries: HashMap<u64, PhysAddr>,
    inserts: u64,
    removes: u64,
}

impl PageTable {
    /// Create a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime count of entry insertions (not net).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Lifetime count of entry removals.
    pub fn removes(&self) -> u64 {
        self.removes
    }

    #[inline]
    /// True when the item lies inside.
    pub fn contains(&self, vpage: u64) -> bool {
        self.entries.contains_key(&vpage)
    }

    #[inline]
    /// Physical base of `vpage`, if mapped.
    pub fn translate_page(&self, vpage: u64) -> Option<PhysAddr> {
        self.entries.get(&vpage).copied()
    }

    /// Translate a byte address. Returns the physical address or `None` if
    /// the page has no entry.
    pub fn translate(&self, addr: VirtAddr, ps: PageSize) -> Option<PhysAddr> {
        let bytes = ps.bytes();
        let vpage = addr.as_u64() / bytes;
        let off = addr.as_u64() % bytes;
        self.entries.get(&vpage).map(|p| p.offset(off))
    }

    /// Insert an entry; returns true if the page was newly mapped.
    pub fn map_page(&mut self, vpage: u64, phys: PhysAddr) -> bool {
        let new = self.entries.insert(vpage, phys).is_none();
        if new {
            self.inserts += 1;
        }
        new
    }

    /// Map a contiguous virtual range to a contiguous physical range.
    pub fn map_range(&mut self, range: AddrRange, phys_base: PhysAddr, ps: PageSize) -> u64 {
        let bytes = ps.bytes();
        debug_assert!(range.start.is_aligned(bytes), "range must be page aligned");
        let mut newly = 0;
        for (i, vpage) in range.page_indices(ps).enumerate() {
            if self.map_page(vpage, phys_base.offset(i as u64 * bytes)) {
                newly += 1;
            }
        }
        newly
    }

    /// Remove an entry; returns true if it existed.
    pub fn unmap_page(&mut self, vpage: u64) -> bool {
        let existed = self.entries.remove(&vpage).is_some();
        if existed {
            self.removes += 1;
        }
        existed
    }

    /// Remove all entries covering `range`; returns how many were present.
    pub fn unmap_range(&mut self, range: AddrRange, ps: PageSize) -> u64 {
        let mut removed = 0;
        for vpage in range.page_indices(ps) {
            if self.unmap_page(vpage) {
                removed += 1;
            }
        }
        removed
    }

    /// Count pages of `range` with and without entries: `(present, missing)`.
    pub fn presence(&self, range: AddrRange, ps: PageSize) -> (u64, u64) {
        let mut present = 0;
        let mut missing = 0;
        for vpage in range.page_indices(ps) {
            if self.contains(vpage) {
                present += 1;
            } else {
                missing += 1;
            }
        }
        (present, missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: PageSize = PageSize::Small;

    #[test]
    fn map_translate_roundtrip() {
        let mut pt = PageTable::new();
        let r = AddrRange::new(VirtAddr(0x10000), 3 * 4096);
        let newly = pt.map_range(r, PhysAddr(0x100000), PS);
        assert_eq!(newly, 3);
        assert_eq!(pt.len(), 3);
        // Address in the middle of the second page.
        let p = pt.translate(VirtAddr(0x11010), PS).unwrap();
        assert_eq!(p.as_u64(), 0x101010);
        assert!(pt.translate(VirtAddr(0x14000), PS).is_none());
    }

    #[test]
    fn remapping_is_not_new() {
        let mut pt = PageTable::new();
        assert!(pt.map_page(5, PhysAddr(0)));
        assert!(!pt.map_page(5, PhysAddr(4096)));
        assert_eq!(pt.inserts(), 1);
        assert_eq!(pt.translate_page(5).unwrap().as_u64(), 4096);
    }

    #[test]
    fn unmap_range_counts() {
        let mut pt = PageTable::new();
        pt.map_range(AddrRange::new(VirtAddr(0), 4 * 4096), PhysAddr(0), PS);
        let removed = pt.unmap_range(AddrRange::new(VirtAddr(4096), 2 * 4096), PS);
        assert_eq!(removed, 2);
        assert_eq!(pt.len(), 2);
        assert_eq!(pt.removes(), 2);
        assert!(!pt.unmap_page(999));
    }

    #[test]
    fn presence_counts_split() {
        let mut pt = PageTable::new();
        pt.map_range(AddrRange::new(VirtAddr(0), 2 * 4096), PhysAddr(0), PS);
        let (present, missing) = pt.presence(AddrRange::new(VirtAddr(0), 5 * 4096), PS);
        assert_eq!((present, missing), (2, 3));
    }
}
