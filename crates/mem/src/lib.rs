//! # apu-mem — simulated MI300A memory subsystem
//!
//! Models the part of the APU the paper's runtime configurations exercise:
//! a **single physical HBM storage** shared by CPU and GPU, per-agent page
//! tables, a capacity-bounded GPU TLB, the **XNACK replay** protocol that
//! installs GPU translations on first touch, the host-side **prefault**
//! syscall path (`svm_attributes_set`) used by Eager Maps, and OS- vs
//! pool-allocator semantics (pool allocations bulk-populate the GPU page
//! table; OS allocations do not).
//!
//! Allocations are backed by *real bytes* (sparsely materialized), so the
//! OpenMP layer above can validate zero-copy visibility semantics — CPU
//! writes seen by the GPU through the same physical pages — not just model
//! time. Every operation returns the virtual-time cost it charges according
//! to a documented, calibrated [`CostModel`].
//!
//! ```
//! use apu_mem::{AddrRange, ApuMemory, CostModel, XnackMode};
//!
//! let mut mem = ApuMemory::new(CostModel::mi300a());
//! let a = mem.host_alloc(1 << 20).unwrap();
//! mem.host_touch(AddrRange::new(a.addr, 1 << 20)).unwrap(); // CPU initializes
//! // First GPU touch of OS-allocated memory XNACK-faults once per page...
//! let o = mem.gpu_access(&[AddrRange::new(a.addr, 1 << 20)], XnackMode::Enabled).unwrap();
//! assert_eq!(o.replayed_pages, 1); // one 2 MiB THP page covers 1 MiB
//! // ...and never again.
//! let o2 = mem.gpu_access(&[AddrRange::new(a.addr, 1 << 20)], XnackMode::Enabled).unwrap();
//! assert_eq!(o2.faulted_pages(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod apu;
mod cost;
mod error;
mod page_table;
mod phys;
mod report;
pub mod runs;
mod system;
mod tlb;
mod vma;

pub use addr::{AddrRange, PageSize, PhysAddr, VirtAddr};
pub use apu::{
    AllocOutcome, ApuMemory, FreeOutcome, GpuAccessOutcome, MemOptions, MemStats, PrefaultOutcome,
    XnackMode, HOST_VA_BASE, POOL_VA_BASE,
};
pub use cost::CostModel;
pub use error::MemError;
pub use page_table::PageTable;
pub use phys::PhysicalMemory;
pub use report::MemoryReport;
pub use system::{DiscreteSpec, SystemKind};
pub use tlb::Tlb;
pub use vma::{Backing, Vma, VmaTable};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_mem() -> ApuMemory {
        ApuMemory::with_capacity(CostModel::mi300a_no_thp(), 256 * 1024 * 1024)
    }

    proptest! {
        /// XNACK faults are one-off per page: across any access pattern the
        /// total pages faulted never exceeds the pages allocated, and a
        /// range never faults twice.
        #[test]
        fn xnack_faults_are_one_off(
            sizes in proptest::collection::vec(1u64..200_000, 1..8),
            order in proptest::collection::vec(0usize..8, 1..32),
        ) {
            let mut m = small_mem();
            let allocs: Vec<_> = sizes.iter().map(|&s| m.host_alloc(s).unwrap()).collect();
            let mut faulted = vec![false; allocs.len()];
            for &i in &order {
                let i = i % allocs.len();
                let a = &allocs[i];
                let r = AddrRange::new(a.addr, a.pages * 4096);
                let o = m.gpu_access(&[r], XnackMode::Enabled).unwrap();
                if faulted[i] {
                    prop_assert_eq!(o.faulted_pages(), 0);
                } else {
                    prop_assert_eq!(o.faulted_pages(), a.pages);
                    prop_assert_eq!(o.zero_filled_pages, a.pages); // untouched memory
                    faulted[i] = true;
                }
            }
        }

        /// Prefault is idempotent and always leaves the range fault-free,
        /// and new+present always equals the page count of the range.
        #[test]
        fn prefault_partition_is_exact(
            size in 1u64..300_000,
            split in 0.0f64..1.0,
        ) {
            let mut m = small_mem();
            let a = m.host_alloc(size).unwrap();
            let total = a.pages * 4096;
            let first_len = ((total as f64 * split) as u64).clamp(1, total);
            let r1 = AddrRange::new(a.addr, first_len);
            let rall = AddrRange::new(a.addr, total);
            let p1 = m.prefault(r1).unwrap();
            let p2 = m.prefault(rall).unwrap();
            prop_assert_eq!(p1.present_pages, 0);
            prop_assert_eq!(p1.new_pages() + p2.new_pages(), a.pages);
            prop_assert_eq!(p2.present_pages, p1.new_pages());
            let o = m.gpu_access(&[rall], XnackMode::Disabled).unwrap();
            prop_assert_eq!(o.faulted_pages(), 0);
        }

        /// Content round-trips through any mix of CPU writes and GPU reads
        /// once translations exist (zero-copy visibility).
        #[test]
        fn content_roundtrip(data in proptest::collection::vec(any::<u8>(), 1..20_000)) {
            let mut m = small_mem();
            let a = m.host_alloc(data.len() as u64).unwrap();
            m.cpu_write(a.addr, &data).unwrap();
            m.gpu_access(&[AddrRange::new(a.addr, data.len() as u64)], XnackMode::Enabled).unwrap();
            let mut back = vec![0u8; data.len()];
            m.gpu_read(a.addr, &mut back).unwrap();
            prop_assert_eq!(back, data);
        }

        /// Allocate/free cycles release everything.
        #[test]
        fn alloc_free_conserves_phys(sizes in proptest::collection::vec(1u64..100_000, 1..16)) {
            let mut m = small_mem();
            let mut addrs = Vec::new();
            for &s in &sizes {
                addrs.push(m.host_alloc(s).unwrap().addr);
            }
            for a in addrs {
                m.host_free(a).unwrap();
            }
            prop_assert_eq!(m.live_vmas(), 0);
            prop_assert_eq!(m.cpu_pt().len(), 0);
            prop_assert_eq!(m.gpu_pt().len(), 0);
        }
    }
}
