//! The unified APU memory subsystem facade.
//!
//! One `ApuMemory` models a single MI300A socket's memory: a single physical
//! HBM storage, a CPU page table populated by demand paging (host first
//! touch), a GPU page table populated either in bulk (pool allocations,
//! host-side prefaulting) or page-by-page by the XNACK protocol, and a
//! capacity-bounded GPU TLB. Every operation returns both its functional
//! result and the virtual time it charges.
//!
//! GPU first touch distinguishes two regimes (see [`CostModel`]): an *XNACK
//! replay* of a CPU-touched page (cheap) and a *zero-fill fault* on memory
//! no agent ever touched (the OS allocates and zeroes the page inside the
//! handler — expensive, the paper's 452.ep case).
//!
//! # Extent fast paths
//!
//! The fault, prefault, touch, and teardown paths classify whole address
//! ranges into present / replay / zero-fill sub-extents by set algebra
//! against the extent-based CPU and GPU page tables, then charge stalls and
//! TLB statistics arithmetically per sub-extent. The work per operation is
//! O(extents touched), not O(pages), while every observable value — page
//! counts, `MemStats`, TLB hit/miss/eviction counters, virtual-time charges,
//! and error addresses — is bit-identical to the page-at-a-time loops. The
//! original per-page implementation is retained as a reference oracle:
//! enable it with [`ApuMemory::set_pagewise`] or by setting
//! `ZC_MEM_PAGEWISE=1` in the environment.

use crate::addr::{AddrRange, PageSize, PhysAddr, VirtAddr};
use crate::cost::CostModel;
use crate::error::MemError;
use crate::page_table::PageTable;
use crate::phys::PhysicalMemory;
use crate::runs::{RunFifo, RunSet};
use crate::system::{DiscreteSpec, SystemKind};
use crate::tlb::Tlb;
use crate::vma::{Backing, Vma, VmaTable};
use sim_des::VirtDuration;

/// Whether Unified Memory (XNACK) support is enabled in the run environment
/// (`HSA_XNACK=1` on the real system).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XnackMode {
    /// GPU faults are replayed (Unified Memory).
    Enabled,
    /// GPU faults are fatal.
    Disabled,
}

/// Result of a host or pool allocation.
#[derive(Debug, Clone, Copy)]
pub struct AllocOutcome {
    /// Base virtual address of the allocation.
    pub addr: VirtAddr,
    /// Pages reserved.
    pub pages: u64,
    /// Virtual-time cost of the allocation call.
    pub cost: VirtDuration,
}

/// Result of a free.
#[derive(Debug, Clone, Copy)]
pub struct FreeOutcome {
    /// Pages released.
    pub pages: u64,
    /// Virtual-time cost of the free call.
    pub cost: VirtDuration,
}

/// Result of a GPU access-set resolution for one kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpuAccessOutcome {
    /// Pages the access set covers.
    pub pages_touched: u64,
    /// CPU-touched pages XNACK-replayed into the GPU page table.
    pub replayed_pages: u64,
    /// Never-touched pages allocated + zeroed inside the fault handler.
    pub zero_filled_pages: u64,
    /// TLB misses on pages that already had translations.
    pub tlb_misses: u64,
    /// Discrete GPUs only: pages migrated over the interconnect on first
    /// touch (unified-memory demand paging).
    pub migrated_pages: u64,
    /// Discrete GPUs only: resident pages evicted to make room (VRAM
    /// oversubscription thrashing).
    pub evicted_pages: u64,
    /// Total GPU stall added to the kernel's execution time.
    pub stall: VirtDuration,
}

impl GpuAccessOutcome {
    /// All pages that faulted (any regime, including migrations).
    pub fn faulted_pages(&self) -> u64 {
        self.replayed_pages + self.zero_filled_pages + self.migrated_pages
    }

    fn merge(&mut self, other: GpuAccessOutcome) {
        self.pages_touched += other.pages_touched;
        self.replayed_pages += other.replayed_pages;
        self.zero_filled_pages += other.zero_filled_pages;
        self.tlb_misses += other.tlb_misses;
        self.migrated_pages += other.migrated_pages;
        self.evicted_pages += other.evicted_pages;
        self.stall += other.stall;
    }
}

/// Result of a host-side GPU page-table prefault (`svm_attributes_set`).
#[derive(Debug, Clone, Copy)]
pub struct PrefaultOutcome {
    /// CPU-touched pages whose GPU entries were inserted.
    pub inserted_pages: u64,
    /// Never-touched pages allocated + zeroed + inserted from the host.
    pub zero_filled_pages: u64,
    /// Pages already present in the GPU page table (re-check only).
    pub present_pages: u64,
    /// Host-side (syscall) cost.
    pub cost: VirtDuration,
}

impl PrefaultOutcome {
    /// Pages that gained a GPU translation from this call.
    pub fn new_pages(&self) -> u64 {
        self.inserted_pages + self.zero_filled_pages
    }
}

/// Lifetime counters for the memory subsystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemStats {
    /// Host (OS) allocations performed.
    pub host_allocs: u64,
    /// Pool allocations performed.
    pub pool_allocs: u64,
    /// GPU faulting episodes.
    pub xnack_events: u64,
    /// Pages XNACK-replayed (CPU-touched regime).
    pub xnack_replayed_pages: u64,
    /// Pages zero-filled inside the GPU fault handler.
    pub xnack_zero_fill_pages: u64,
    /// Prefault syscalls issued.
    pub prefault_calls: u64,
    /// Pages inserted by prefaults (CPU-touched regime).
    pub prefault_inserted_pages: u64,
    /// Pages zero-filled by prefaults.
    pub prefault_zero_fill_pages: u64,
    /// Already-present pages re-checked by prefaults.
    pub prefault_present_pages: u64,
    /// Bytes moved by DMA copies.
    pub bytes_copied: u64,
    /// Discrete GPUs only: unified-memory pages migrated to VRAM.
    pub migrated_pages: u64,
    /// Discrete GPUs only: pages evicted under VRAM pressure.
    pub evicted_pages: u64,
}

impl MemStats {
    /// Pages faulted on the GPU in either regime.
    pub fn xnack_pages(&self) -> u64 {
        self.xnack_replayed_pages + self.xnack_zero_fill_pages
    }

    /// Pages that gained translations via prefaults.
    pub fn prefault_new_pages(&self) -> u64 {
        self.prefault_inserted_pages + self.prefault_zero_fill_pages
    }
}

/// Base of the host bump allocator's VA region. Public so the tenant layer
/// can carve disjoint per-tenant windows above it (see
/// [`MemOptions::va_shift`]).
pub const HOST_VA_BASE: u64 = 0x5000_0000_0000;
/// Base of the device-pool bump allocator's VA region. `HOST_VA_BASE +
/// va_shift` windows must stay below this, which is what bounds the tenant
/// count.
pub const POOL_VA_BASE: u64 = 0x7000_0000_0000;

/// Typed construction options for [`ApuMemory`], passed down from the
/// runtime builder. Binaries that want environment-variable control
/// translate it once at the edge via [`MemOptions::from_env`]; the library
/// itself never reads the environment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemOptions {
    /// Use the per-page reference implementation instead of the extent
    /// fast paths (equivalence testing / ablation).
    pub pagewise: bool,
    /// Override the HBM capacity in bytes (tests); `None` keeps the full
    /// MI300A 128 GiB socket.
    pub capacity: Option<u64>,
    /// Offset added to both bump-allocator bases ([`HOST_VA_BASE`],
    /// [`POOL_VA_BASE`]). A multi-tenant runtime gives every tenant a
    /// disjoint VA window over one shared mapping table by shifting each
    /// tenant's memory image; `0` (the default) reproduces the historical
    /// layout exactly.
    pub va_shift: u64,
}

impl MemOptions {
    /// Translate the `ZC_MEM_PAGEWISE` environment variable into options.
    /// Only binary entry points should call this.
    pub fn from_env() -> Self {
        MemOptions {
            pagewise: std::env::var("ZC_MEM_PAGEWISE").is_ok_and(|v| v == "1"),
            capacity: None,
            va_shift: 0,
        }
    }

    /// Set the per-page reference-implementation flag.
    pub fn pagewise(mut self, pagewise: bool) -> Self {
        self.pagewise = pagewise;
        self
    }

    /// Override the HBM capacity in bytes.
    pub fn capacity(mut self, bytes: u64) -> Self {
        self.capacity = Some(bytes);
        self
    }

    /// Shift both VA bump-allocator bases (per-tenant address windows).
    pub fn va_shift(mut self, shift: u64) -> Self {
        self.va_shift = shift;
        self
    }
}

/// A single APU socket's memory subsystem.
#[derive(Debug)]
pub struct ApuMemory {
    cost: CostModel,
    kind: SystemKind,
    /// Discrete only: VRAM bytes consumed by pool allocations.
    vram_used: u64,
    /// Discrete only: FIFO of unified-memory pages resident in VRAM.
    um_resident: RunFifo,
    um_resident_set: RunSet,
    phys: PhysicalMemory,
    vmas: VmaTable,
    cpu_pt: PageTable,
    gpu_pt: PageTable,
    gpu_tlb: Tlb,
    host_brk: u64,
    pool_brk: u64,
    stats: MemStats,
    /// Use the per-page reference implementation instead of the extent
    /// fast paths (equivalence testing / ablation).
    pagewise: bool,
}

impl ApuMemory {
    /// The canonical constructor: a memory system of the given kind with
    /// typed [`MemOptions`]. All other constructors delegate here.
    pub fn with_options(cost: CostModel, kind: SystemKind, opts: MemOptions) -> Self {
        let tlb = Tlb::new(cost.gpu_tlb_entries);
        let ps = cost.page_size;
        ApuMemory {
            cost,
            kind,
            vram_used: 0,
            um_resident: RunFifo::new(),
            um_resident_set: RunSet::new(),
            phys: match opts.capacity {
                Some(bytes) => PhysicalMemory::new(bytes),
                None => PhysicalMemory::mi300a(),
            },
            vmas: VmaTable::new(),
            cpu_pt: PageTable::with_page_size(ps),
            gpu_pt: PageTable::with_page_size(ps),
            gpu_tlb: tlb,
            host_brk: HOST_VA_BASE + opts.va_shift,
            pool_brk: POOL_VA_BASE + opts.va_shift,
            stats: MemStats::default(),
            pagewise: opts.pagewise,
        }
    }

    /// A socket with the full 128 GiB of MI300A HBM.
    pub fn new(cost: CostModel) -> Self {
        Self::with_options(cost, SystemKind::Apu, MemOptions::default())
    }

    /// A socket with a custom HBM capacity (tests).
    pub fn with_capacity(cost: CostModel, capacity: u64) -> Self {
        Self::with_options(
            cost,
            SystemKind::Apu,
            MemOptions::default().capacity(capacity),
        )
    }

    /// A memory system of the given kind (APU or discrete GPU).
    pub fn new_system(cost: CostModel, kind: SystemKind) -> Self {
        Self::with_options(cost, kind, MemOptions::default())
    }

    /// The system kind.
    pub fn kind(&self) -> &SystemKind {
        &self.kind
    }

    /// Discrete only: VRAM bytes consumed by pool allocations.
    pub fn vram_used(&self) -> u64 {
        self.vram_used
    }

    /// Discrete only: unified-memory pages currently resident in VRAM.
    pub fn um_resident_pages(&self) -> u64 {
        self.um_resident.len_pages()
    }

    /// Switch between the extent fast paths (default) and the per-page
    /// reference implementation. The two are observably identical; the
    /// reference path exists as an oracle for equivalence tests and for the
    /// bookkeeping ablation benchmark. Also settable at construction via
    /// [`MemOptions::pagewise`] (binaries translate `ZC_MEM_PAGEWISE=1`
    /// into it at the edge).
    pub fn set_pagewise(&mut self, pagewise: bool) {
        self.pagewise = pagewise;
    }

    /// True when the per-page reference implementation is active.
    pub fn is_pagewise(&self) -> bool {
        self.pagewise
    }

    fn discrete(&self) -> Option<&DiscreteSpec> {
        match &self.kind {
            SystemKind::Apu => None,
            SystemKind::Discrete(d) => Some(d),
        }
    }

    /// Duration of a DMA transfer between `src` and `dst`. On the APU every
    /// copy is HBM-to-HBM; on a discrete GPU a copy with exactly one
    /// device-pool side crosses the interconnect.
    pub fn transfer_duration(&self, src: VirtAddr, dst: VirtAddr, len: u64) -> VirtDuration {
        let Some(d) = self.discrete() else {
            return self.cost.copy_duration(len);
        };
        let is_dev = |a: VirtAddr| {
            self.vmas
                .find(a)
                .map(|v| v.backing == crate::vma::Backing::DevicePool)
                .unwrap_or(false)
        };
        if is_dev(src) != is_dev(dst) {
            sim_des::transfer_time(len, d.link_bandwidth)
        } else {
            self.cost.copy_duration(len)
        }
    }

    /// The active cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The page granularity in force.
    pub fn page_size(&self) -> PageSize {
        self.cost.page_size
    }

    /// Lifetime counters.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// The CPU page table (demand-paging state).
    pub fn cpu_pt(&self) -> &PageTable {
        &self.cpu_pt
    }

    /// The GPU page table.
    pub fn gpu_pt(&self) -> &PageTable {
        &self.gpu_pt
    }

    /// The GPU TLB model.
    pub fn gpu_tlb(&self) -> &Tlb {
        &self.gpu_tlb
    }

    /// Live allocation count.
    pub fn live_vmas(&self) -> usize {
        self.vmas.len()
    }

    /// Iterate live allocations.
    pub fn vmas(&self) -> impl Iterator<Item = &crate::vma::Vma> {
        self.vmas.iter()
    }

    /// Real backing bytes currently materialized in the content store.
    pub fn resident_content_bytes(&self) -> u64 {
        self.phys.resident_bytes()
    }

    fn page_bytes(&self) -> u64 {
        self.cost.page_size.bytes()
    }

    fn round_up(&self, len: u64) -> u64 {
        let ps = self.page_bytes();
        len.div_ceil(ps) * ps
    }

    /// First page index and page count covering `range` (empty -> count 0).
    fn page_span(&self, range: &AddrRange) -> (u64, u64) {
        if range.is_empty() {
            return (0, 0);
        }
        let pb = self.page_bytes();
        let count = self.cost.page_size.pages_covering(range.start, range.len);
        (range.start.as_u64() / pb, count)
    }

    /// Physical address backing `vpage` under `vma`.
    fn vma_page_phys(vma: &Vma, vpage: u64, pb: u64) -> PhysAddr {
        let off = vpage * pb - vma.range.start.align_down(pb).as_u64();
        vma.phys.offset(off)
    }

    /// OS allocation (malloc/mmap path). Pages are *reserved, not touched*:
    /// neither the CPU nor the GPU page table gains entries until first
    /// touch ([`host_touch`](Self::host_touch)) or a prefault.
    pub fn host_alloc(&mut self, len: u64) -> Result<AllocOutcome, MemError> {
        if len == 0 {
            return Err(MemError::ZeroSizedAllocation);
        }
        let alen = self.round_up(len);
        let phys = self.phys.alloc(alen, self.page_bytes())?;
        let addr = VirtAddr(self.host_brk);
        self.host_brk += alen + self.page_bytes(); // guard gap
        self.vmas.insert(Vma {
            range: AddrRange::new(addr, alen),
            backing: Backing::HostOs,
            phys,
        });
        self.stats.host_allocs += 1;
        Ok(AllocOutcome {
            addr,
            pages: alen / self.page_bytes(),
            cost: self.cost.host_alloc_base,
        })
    }

    /// CPU first touch of `range` (host-side initialization): populates the
    /// CPU page table by demand paging. Returns pages newly touched. Both
    /// configurations pay this equally, so no cost is charged.
    pub fn host_touch(&mut self, range: AddrRange) -> Result<u64, MemError> {
        let vma = self
            .vmas
            .find_covering(&range)
            .ok_or(MemError::RangeOutsideAllocation {
                addr: range.start,
                len: range.len,
            })?
            .clone();
        let ps = self.cost.page_size;
        let pb = ps.bytes();
        if self.pagewise {
            let mut newly = 0;
            for vpage in range.page_indices(ps) {
                if !self.cpu_pt.contains(vpage) {
                    self.cpu_pt
                        .map_page(vpage, Self::vma_page_phys(&vma, vpage, pb));
                    newly += 1;
                }
            }
            return Ok(newly);
        }
        // Fast path: map each unmapped gap of the span as one extent.
        let (first, count) = self.page_span(&range);
        let end = first + count;
        let mut newly = 0;
        let mut pos = first;
        while pos < end {
            let (mapped, run_end) = self.cpu_pt.span_at(pos, end);
            if !mapped {
                self.cpu_pt
                    .map_pages(pos, run_end - pos, Self::vma_page_phys(&vma, pos, pb));
                newly += run_end - pos;
            }
            pos = run_end;
        }
        Ok(newly)
    }

    /// Free an OS allocation. Tears down CPU *and* GPU translations (so a
    /// later reuse of the region faults again, as the paper observes for
    /// per-call host stack data in 457.spC / 470.bt).
    pub fn host_free(&mut self, addr: VirtAddr) -> Result<FreeOutcome, MemError> {
        let vma = self.take_vma(addr, Backing::HostOs)?;
        let pages = vma.range.len / self.page_bytes();
        self.teardown(&vma);
        Ok(FreeOutcome {
            pages,
            cost: self.cost.host_alloc_base,
        })
    }

    /// ROCr memory-pool allocation. On the APU the driver fulfils it from
    /// the same HBM, then allocates, zeroes, and bulk-prefaults every page
    /// into *both* page tables (XNACK-disabled driver behaviour): kernels
    /// touching this memory never fault.
    pub fn pool_alloc(&mut self, len: u64) -> Result<AllocOutcome, MemError> {
        if len == 0 {
            return Err(MemError::ZeroSizedAllocation);
        }
        let alen = self.round_up(len);
        if let Some(d) = self.discrete() {
            // Resident unified-memory pages physically occupy VRAM too; a
            // pool allocation that would not fit beside them fails, and the
            // runtime's eviction-then-retry recovery may push them out.
            let um_bytes = self.um_resident.len_pages() * self.page_bytes();
            if self.vram_used + um_bytes + alen > d.vram_bytes {
                return Err(MemError::OutOfMemory {
                    requested: alen,
                    available: d.vram_bytes.saturating_sub(self.vram_used + um_bytes),
                });
            }
            self.vram_used += alen;
        }
        let phys = self.phys.alloc(alen, self.page_bytes())?;
        let addr = VirtAddr(self.pool_brk);
        self.pool_brk += alen + self.page_bytes();
        let range = AddrRange::new(addr, alen);
        self.cpu_pt.map_range(range, phys, self.cost.page_size);
        self.gpu_pt.map_range(range, phys, self.cost.page_size);
        self.vmas.insert(Vma {
            range,
            backing: Backing::DevicePool,
            phys,
        });
        self.stats.pool_allocs += 1;
        let pages = alen / self.page_bytes();
        Ok(AllocOutcome {
            addr,
            pages,
            cost: self.cost.pool_alloc_cost(pages),
        })
    }

    /// Free a pool allocation.
    pub fn pool_free(&mut self, addr: VirtAddr) -> Result<FreeOutcome, MemError> {
        let vma = self.take_vma(addr, Backing::DevicePool)?;
        let pages = vma.range.len / self.page_bytes();
        if self.discrete().is_some() {
            self.vram_used = self.vram_used.saturating_sub(vma.range.len);
        }
        self.teardown(&vma);
        Ok(FreeOutcome {
            pages,
            cost: self.cost.pool_free_cost(pages),
        })
    }

    /// Discrete only: evict up to `max_pages` unified-memory pages from
    /// VRAM, oldest first (same FIFO order as oversubscription eviction).
    /// Evicted pages lose their GPU translation and re-migrate on their
    /// next GPU touch; CPU translations are untouched, so content is
    /// preserved. Returns the number of pages actually evicted — `0` on an
    /// APU or when nothing is resident, which recovery policies use to
    /// decide whether an eviction-then-retry attempt is worth making.
    pub fn evict_um_pages(&mut self, max_pages: u64) -> u64 {
        if self.discrete().is_none() {
            return 0;
        }
        let mut evicted = 0;
        while evicted < max_pages {
            let Some(victim) = self.um_resident.pop_front_page() else {
                break;
            };
            self.um_resident_set.remove_run(victim, 1);
            if self.gpu_pt.unmap_page(victim) {
                self.gpu_tlb.invalidate(victim);
            }
            evicted += 1;
        }
        self.stats.evicted_pages += evicted;
        evicted
    }

    fn take_vma(&mut self, addr: VirtAddr, backing: Backing) -> Result<Vma, MemError> {
        match self.vmas.find(addr) {
            Some(v) if v.range.start == addr && v.backing == backing => {
                Ok(self.vmas.remove(addr).expect("vma just found"))
            }
            _ => Err(MemError::InvalidFree { addr }),
        }
    }

    fn teardown(&mut self, vma: &Vma) {
        let ps = self.cost.page_size;
        self.cpu_pt.unmap_range(vma.range, ps);
        if self.pagewise {
            for vpage in vma.range.page_indices(ps) {
                if self.gpu_pt.unmap_page(vpage) {
                    self.gpu_tlb.invalidate(vpage);
                }
                if !self.um_resident_set.remove_run(vpage, 1).is_empty() {
                    self.um_resident.remove_pages(vpage, 1);
                }
            }
        } else {
            let (first, count) = self.page_span(&vma.range);
            for (s, l) in self.gpu_pt.unmap_pages(first, count) {
                self.gpu_tlb.invalidate_range(s, l);
            }
            if !self.um_resident_set.remove_run(first, count).is_empty() {
                self.um_resident.remove_pages(first, count);
            }
        }
        self.phys.free(vma.phys, vma.range.len);
    }

    /// Resolve one kernel's accessed ranges against the GPU page table.
    ///
    /// With XNACK enabled, missing translations fault page-by-page: a
    /// cheap replay if the CPU touched the page, an expensive allocate+zero
    /// if no agent ever did. With XNACK disabled, a missing translation is
    /// a fatal GPU memory fault.
    pub fn gpu_access(
        &mut self,
        ranges: &[AddrRange],
        xnack: XnackMode,
    ) -> Result<GpuAccessOutcome, MemError> {
        let pb = self.page_bytes();
        let mut out = GpuAccessOutcome::default();
        for range in ranges {
            if range.is_empty() {
                continue;
            }
            let vma = self
                .vmas
                .find_covering(range)
                .ok_or(MemError::RangeOutsideAllocation {
                    addr: range.start,
                    len: range.len,
                })?
                .clone();
            let mut o = if self.pagewise {
                self.resolve_range_pagewise(range, &vma, xnack)?
            } else {
                self.resolve_range_extents(range, &vma, xnack)?
            };
            o.stall = self.cost.fault_stall(o.replayed_pages, o.zero_filled_pages)
                + self.cost.tlb_miss * o.tlb_misses;
            if let Some(d) = self.discrete() {
                o.stall += d.migration_cost(pb) * o.migrated_pages;
            }
            if o.faulted_pages() > 0 {
                self.stats.xnack_events += 1;
                self.stats.xnack_replayed_pages += o.replayed_pages;
                self.stats.xnack_zero_fill_pages += o.zero_filled_pages;
                self.stats.migrated_pages += o.migrated_pages;
                self.stats.evicted_pages += o.evicted_pages;
            }
            out.merge(o);
        }
        Ok(out)
    }

    /// Per-page reference resolution of one accessed range (oracle path).
    fn resolve_range_pagewise(
        &mut self,
        range: &AddrRange,
        vma: &Vma,
        xnack: XnackMode,
    ) -> Result<GpuAccessOutcome, MemError> {
        let ps = self.cost.page_size;
        let pb = ps.bytes();
        let mut o = GpuAccessOutcome::default();
        for vpage in range.page_indices(ps) {
            o.pages_touched += 1;
            if self.gpu_pt.contains(vpage) {
                if !self.gpu_tlb.access(vpage) {
                    o.tlb_misses += 1;
                }
                continue;
            }
            if xnack == XnackMode::Disabled {
                return Err(MemError::GpuFatalFault {
                    addr: VirtAddr(vpage * pb),
                });
            }
            let phys = Self::vma_page_phys(vma, vpage, pb);
            if let Some(d) = self.discrete().cloned() {
                // Discrete GPU unified memory: first touch *migrates*
                // the page over the interconnect into VRAM; when VRAM
                // is oversubscribed, the oldest migrated page evicts
                // and will re-migrate on its next touch.
                self.cpu_pt.map_page(vpage, phys);
                self.gpu_pt.map_page(vpage, phys);
                self.gpu_tlb.access(vpage);
                self.um_resident.push_back_run(vpage, 1);
                self.um_resident_set.insert_run(vpage, 1);
                o.migrated_pages += 1;
                let budget_pages = d.vram_bytes.saturating_sub(self.vram_used) / pb;
                while self.um_resident.len_pages() > budget_pages {
                    let victim = self.um_resident.pop_front_page().expect("nonempty");
                    self.um_resident_set.remove_run(victim, 1);
                    if self.gpu_pt.unmap_page(victim) {
                        self.gpu_tlb.invalidate(victim);
                    }
                    o.evicted_pages += 1;
                }
                continue;
            }
            if self.cpu_pt.contains(vpage) {
                o.replayed_pages += 1;
            } else {
                // First touch anywhere: allocate + zero in the handler,
                // and the CPU table gains the entry too.
                self.cpu_pt.map_page(vpage, phys);
                o.zero_filled_pages += 1;
            }
            self.gpu_pt.map_page(vpage, phys);
            self.gpu_tlb.access(vpage);
        }
        Ok(o)
    }

    /// Extent resolution of one accessed range: walk maximal
    /// GPU-present/absent runs in ascending page order and handle each as a
    /// unit. The walk re-queries the GPU table after every run because
    /// discrete-GPU eviction can unmap pages *ahead* of the cursor within
    /// the same access (VRAM thrashing), which must re-fault immediately —
    /// exactly as the per-page loop does.
    fn resolve_range_extents(
        &mut self,
        range: &AddrRange,
        vma: &Vma,
        xnack: XnackMode,
    ) -> Result<GpuAccessOutcome, MemError> {
        let pb = self.page_bytes();
        let (first, count) = self.page_span(range);
        let end = first + count;
        let mut o = GpuAccessOutcome {
            pages_touched: count,
            ..Default::default()
        };
        let mut pos = first;
        while pos < end {
            let (mapped, run_end) = self.gpu_pt.span_at(pos, end);
            let run_len = run_end - pos;
            if mapped {
                let (_, misses) = self.gpu_tlb.access_range(pos, run_len);
                o.tlb_misses += misses;
                pos = run_end;
                continue;
            }
            // A faulting run. Earlier present runs already charged their
            // TLB accesses, matching the sequential order of events.
            if xnack == XnackMode::Disabled {
                return Err(MemError::GpuFatalFault {
                    addr: VirtAddr(pos * pb),
                });
            }
            if let Some(d) = self.discrete().cloned() {
                self.migrate_run(pos, run_len, vma, &d, &mut o);
            } else {
                // APU: split the faulting run by CPU residency into replay
                // (CPU-touched) and zero-fill (never-touched) sub-runs.
                let mut q = pos;
                while q < run_end {
                    let (cpu_mapped, sub_end) = self.cpu_pt.span_at(q, run_end);
                    let sub_len = sub_end - q;
                    let phys = Self::vma_page_phys(vma, q, pb);
                    if cpu_mapped {
                        o.replayed_pages += sub_len;
                    } else {
                        self.cpu_pt.map_pages(q, sub_len, phys);
                        o.zero_filled_pages += sub_len;
                    }
                    self.gpu_pt.map_pages(q, sub_len, phys);
                    self.gpu_tlb.access_range(q, sub_len);
                    q = sub_end;
                }
            }
            pos = run_end;
        }
        Ok(o)
    }

    /// Discrete GPU: migrate a run of absent pages into VRAM. When the run
    /// fits the remaining residency budget the whole run is processed as one
    /// extent (no eviction can occur, so bulk TLB/queue updates are exact).
    /// Otherwise eviction interleaves with migration page by page — evicted
    /// pages may sit ahead in this very run — so fall back to the exact
    /// per-page protocol for this run only.
    fn migrate_run(
        &mut self,
        start: u64,
        len: u64,
        vma: &Vma,
        d: &DiscreteSpec,
        o: &mut GpuAccessOutcome,
    ) {
        let pb = self.page_bytes();
        let budget_pages = d.vram_bytes.saturating_sub(self.vram_used) / pb;
        if self.um_resident.len_pages() + len <= budget_pages {
            let phys = Self::vma_page_phys(vma, start, pb);
            self.cpu_pt.map_pages(start, len, phys);
            self.gpu_pt.map_pages(start, len, phys);
            self.gpu_tlb.access_range(start, len);
            self.um_resident.push_back_run(start, len);
            self.um_resident_set.insert_run(start, len);
            o.migrated_pages += len;
            return;
        }
        for vpage in start..start + len {
            let phys = Self::vma_page_phys(vma, vpage, pb);
            self.cpu_pt.map_page(vpage, phys);
            self.gpu_pt.map_page(vpage, phys);
            self.gpu_tlb.access(vpage);
            self.um_resident.push_back_run(vpage, 1);
            self.um_resident_set.insert_run(vpage, 1);
            o.migrated_pages += 1;
            while self.um_resident.len_pages() > budget_pages {
                let victim = self.um_resident.pop_front_page().expect("nonempty");
                self.um_resident_set.remove_run(victim, 1);
                if self.gpu_pt.unmap_page(victim) {
                    self.gpu_tlb.invalidate(victim);
                }
                o.evicted_pages += 1;
            }
        }
    }

    /// Host-side GPU page-table prefault over `range`
    /// (the `svm_attributes_set` path used by Eager Maps).
    pub fn prefault(&mut self, range: AddrRange) -> Result<PrefaultOutcome, MemError> {
        let vma = self
            .vmas
            .find_covering(&range)
            .ok_or(MemError::RangeOutsideAllocation {
                addr: range.start,
                len: range.len,
            })?
            .clone();
        let ps = self.cost.page_size;
        let pb = ps.bytes();
        let mut inserted = 0;
        let mut zero_filled = 0;
        let mut present = 0;
        if self.pagewise {
            for vpage in range.page_indices(ps) {
                if self.gpu_pt.contains(vpage) {
                    present += 1;
                    continue;
                }
                let phys = Self::vma_page_phys(&vma, vpage, pb);
                if self.cpu_pt.contains(vpage) {
                    inserted += 1;
                } else {
                    self.cpu_pt.map_page(vpage, phys);
                    zero_filled += 1;
                }
                self.gpu_pt.map_page(vpage, phys);
            }
        } else {
            // Fast path: classify the span into GPU-present runs (re-check
            // only) and GPU-absent runs, splitting the latter by CPU
            // residency into inserted vs zero-filled sub-extents.
            let (first, count) = self.page_span(&range);
            let end = first + count;
            let mut pos = first;
            while pos < end {
                let (mapped, run_end) = self.gpu_pt.span_at(pos, end);
                if mapped {
                    present += run_end - pos;
                    pos = run_end;
                    continue;
                }
                let mut q = pos;
                while q < run_end {
                    let (cpu_mapped, sub_end) = self.cpu_pt.span_at(q, run_end);
                    let sub_len = sub_end - q;
                    let phys = Self::vma_page_phys(&vma, q, pb);
                    if cpu_mapped {
                        inserted += sub_len;
                    } else {
                        self.cpu_pt.map_pages(q, sub_len, phys);
                        zero_filled += sub_len;
                    }
                    self.gpu_pt.map_pages(q, sub_len, phys);
                    q = sub_end;
                }
                pos = run_end;
            }
        }
        self.stats.prefault_calls += 1;
        self.stats.prefault_inserted_pages += inserted;
        self.stats.prefault_zero_fill_pages += zero_filled;
        self.stats.prefault_present_pages += present;
        let cost = match self.discrete() {
            // Discrete: a prefetch is a bulk migration over the link.
            Some(d) => {
                let pb = self.cost.page_size.bytes();
                self.cost.prefault_syscall + d.migration_cost(pb) * (inserted + zero_filled)
            }
            None => self.cost.prefault_cost(inserted, zero_filled, present),
        };
        if self.discrete().is_some() {
            if self.pagewise {
                for vpage in range.page_indices(self.cost.page_size) {
                    if self.um_resident_set.insert_run(vpage, 1) == 1 {
                        self.um_resident.push_back_run(vpage, 1);
                    }
                }
            } else {
                // Enqueue each not-yet-resident run in ascending order —
                // the same page order the per-page loop produces.
                let (first, count) = self.page_span(&range);
                let end = first + count;
                let mut pos = first;
                while pos < end {
                    let (resident, run_end) = self.um_resident_set.span_at(pos, end);
                    if !resident {
                        self.um_resident_set.insert_run(pos, run_end - pos);
                        self.um_resident.push_back_run(pos, run_end - pos);
                    }
                    pos = run_end;
                }
            }
        }
        Ok(PrefaultOutcome {
            inserted_pages: inserted,
            zero_filled_pages: zero_filled,
            present_pages: present,
            cost,
        })
    }

    /// CPU load of real content (no paging-state requirement; sparse reads
    /// return zeros like fresh pages).
    pub fn cpu_read(&self, addr: VirtAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let phys = self.translate_vma(addr, buf.len() as u64, false)?;
        self.phys.read(phys, buf);
        Ok(())
    }

    /// CPU store of real content. First touch populates the CPU page table
    /// (demand paging).
    pub fn cpu_write(&mut self, addr: VirtAddr, data: &[u8]) -> Result<(), MemError> {
        let phys = self.translate_vma(addr, data.len() as u64, false)?;
        self.host_touch(AddrRange::new(addr, data.len() as u64))
            .ok();
        self.phys.write(phys, data);
        Ok(())
    }

    /// GPU load of real content. Requires GPU translations for every page
    /// (run [`gpu_access`](Self::gpu_access) first, as a kernel launch does).
    pub fn gpu_read(&self, addr: VirtAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let phys = self.translate_vma(addr, buf.len() as u64, true)?;
        self.phys.read(phys, buf);
        Ok(())
    }

    /// GPU store of real content. Requires GPU translations.
    pub fn gpu_write(&mut self, addr: VirtAddr, data: &[u8]) -> Result<(), MemError> {
        let phys = self.translate_vma(addr, data.len() as u64, true)?;
        self.phys.write(phys, data);
        Ok(())
    }

    /// DMA content copy between two live ranges. Returns the byte count;
    /// the caller (HSA layer) charges the bandwidth cost to a DMA engine.
    /// The destination counts as CPU-touched (the engine wrote it).
    pub fn copy(&mut self, src: VirtAddr, dst: VirtAddr, len: u64) -> Result<u64, MemError> {
        if len == 0 {
            return Ok(0);
        }
        let sp = self.translate_vma(src, len, false)?;
        let dp = self.translate_vma(dst, len, false)?;
        self.phys.copy(sp, dp, len);
        self.host_touch(AddrRange::new(dst, len)).ok();
        self.stats.bytes_copied += len;
        Ok(len)
    }

    /// Translate `addr` for a `len`-byte access through the VMA table
    /// (allocations are physically contiguous). When `gpu` is set, every
    /// covered page must have a GPU page-table entry.
    fn translate_vma(
        &self,
        addr: VirtAddr,
        len: u64,
        gpu: bool,
    ) -> Result<crate::addr::PhysAddr, MemError> {
        let range = AddrRange::new(addr, len.max(1));
        let vma = self
            .vmas
            .find_covering(&range)
            .ok_or(MemError::RangeOutsideAllocation { addr, len })?;
        if gpu {
            let (first, count) = self.page_span(&range);
            if let Some(vpage) = self.gpu_pt.first_missing(first, count) {
                return Err(MemError::GpuFatalFault {
                    addr: VirtAddr(vpage * self.page_bytes()),
                });
            }
        }
        Ok(vma.phys.offset(addr.as_u64() - vma.range.start.as_u64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{DiscreteSpec, SystemKind};

    fn mem() -> ApuMemory {
        // Small pages keep the test working sets tiny.
        ApuMemory::with_capacity(CostModel::mi300a_no_thp(), 64 * 1024 * 1024)
    }

    #[test]
    fn host_alloc_reserves_without_touching() {
        let mut m = mem();
        let a = m.host_alloc(10_000).unwrap();
        assert_eq!(a.pages, 3); // 10_000 bytes over 4 KiB pages
        assert_eq!(m.cpu_pt().len(), 0); // demand paging: untouched
        assert_eq!(m.gpu_pt().len(), 0);
        let touched = m.host_touch(AddrRange::new(a.addr, 10_000)).unwrap();
        assert_eq!(touched, 3);
        assert_eq!(m.cpu_pt().len(), 3);
        // Idempotent.
        assert_eq!(m.host_touch(AddrRange::new(a.addr, 10_000)).unwrap(), 0);
    }

    #[test]
    fn pool_alloc_bulk_populates_both_tables() {
        let mut m = mem();
        let a = m.pool_alloc(10_000).unwrap();
        assert_eq!(m.gpu_pt().len(), 3);
        assert_eq!(m.cpu_pt().len(), 3);
        assert_eq!(a.cost, m.cost().pool_alloc_cost(3));
    }

    #[test]
    fn touched_pages_replay_cheaply_untouched_zero_fill() {
        let mut m = mem();
        let a = m.host_alloc(8 * 4096).unwrap();
        // Touch the first half on the CPU.
        m.host_touch(AddrRange::new(a.addr, 4 * 4096)).unwrap();
        let r = AddrRange::new(a.addr, 8 * 4096);
        let o = m.gpu_access(&[r], XnackMode::Enabled).unwrap();
        assert_eq!(o.replayed_pages, 4);
        assert_eq!(o.zero_filled_pages, 4);
        let c = m.cost().clone();
        assert_eq!(o.stall, c.fault_stall(4, 4));
        // Second access: no faults at all.
        let o2 = m.gpu_access(&[r], XnackMode::Enabled).unwrap();
        assert_eq!(o2.faulted_pages(), 0);
        // Zero-fill populated the CPU table as well.
        assert_eq!(m.cpu_pt().len(), 8);
    }

    #[test]
    fn gpu_touch_without_xnack_is_fatal() {
        let mut m = mem();
        let a = m.host_alloc(4096).unwrap();
        let r = AddrRange::new(a.addr, 4096);
        let err = m.gpu_access(&[r], XnackMode::Disabled).unwrap_err();
        assert!(matches!(err, MemError::GpuFatalFault { .. }));
        // Pool memory is fine without XNACK.
        let p = m.pool_alloc(4096).unwrap();
        let rp = AddrRange::new(p.addr, 4096);
        assert!(m.gpu_access(&[rp], XnackMode::Disabled).is_ok());
    }

    #[test]
    fn prefault_distinguishes_regimes() {
        let mut m = mem();
        let a = m.host_alloc(16 * 4096).unwrap();
        m.host_touch(AddrRange::new(a.addr, 8 * 4096)).unwrap();
        let r = AddrRange::new(a.addr, 16 * 4096);
        let p1 = m.prefault(r).unwrap();
        assert_eq!(p1.inserted_pages, 8);
        assert_eq!(p1.zero_filled_pages, 8);
        assert_eq!(p1.present_pages, 0);
        let p2 = m.prefault(r).unwrap();
        assert_eq!(p2.new_pages(), 0);
        assert_eq!(p2.present_pages, 16);
        assert!(p2.cost < p1.cost);
        // Even with XNACK disabled the access now succeeds fault-free.
        let o = m.gpu_access(&[r], XnackMode::Disabled).unwrap();
        assert_eq!(o.faulted_pages(), 0);
    }

    #[test]
    fn host_free_tears_down_gpu_entries() {
        let mut m = mem();
        let a = m.host_alloc(4096).unwrap();
        let r = AddrRange::new(a.addr, 4096);
        m.gpu_access(&[r], XnackMode::Enabled).unwrap();
        assert_eq!(m.gpu_pt().len(), 1);
        m.host_free(a.addr).unwrap();
        assert_eq!(m.gpu_pt().len(), 0);
        assert_eq!(m.cpu_pt().len(), 0);
    }

    #[test]
    fn realloc_after_free_faults_again() {
        // The 457.spC host-stack pattern: fresh allocations re-fault.
        let mut m = mem();
        for _ in 0..3 {
            let a = m.host_alloc(4 * 4096).unwrap();
            let r = AddrRange::new(a.addr, 4 * 4096);
            m.host_touch(r).unwrap();
            let o = m.gpu_access(&[r], XnackMode::Enabled).unwrap();
            assert_eq!(o.replayed_pages, 4);
            m.host_free(a.addr).unwrap();
        }
        assert_eq!(m.stats().xnack_replayed_pages, 12);
    }

    #[test]
    fn double_free_rejected() {
        let mut m = mem();
        let a = m.host_alloc(4096).unwrap();
        m.host_free(a.addr).unwrap();
        assert!(matches!(
            m.host_free(a.addr),
            Err(MemError::InvalidFree { .. })
        ));
        let b = m.host_alloc(4096).unwrap();
        assert!(m.pool_free(b.addr).is_err());
    }

    #[test]
    fn cpu_content_roundtrip_touches_pages() {
        let mut m = mem();
        let a = m.host_alloc(10_000).unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 127) as u8).collect();
        m.cpu_write(a.addr, &data).unwrap();
        assert_eq!(m.cpu_pt().len(), 3); // write touched the pages
        let mut back = vec![0u8; data.len()];
        m.cpu_read(a.addr, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn zero_copy_gpu_sees_cpu_writes() {
        let mut m = mem();
        let a = m.host_alloc(4096).unwrap();
        m.cpu_write(a.addr, b"hello apu").unwrap();
        let r = AddrRange::new(a.addr, 4096);
        let o = m.gpu_access(&[r], XnackMode::Enabled).unwrap();
        assert_eq!(o.replayed_pages, 1); // CPU-touched: cheap replay
        let mut buf = [0u8; 9];
        m.gpu_read(a.addr, &mut buf).unwrap();
        assert_eq!(&buf, b"hello apu");
        m.gpu_write(a.addr, b"HELLO APU").unwrap();
        let mut cb = [0u8; 9];
        m.cpu_read(a.addr, &mut cb).unwrap();
        assert_eq!(&cb, b"HELLO APU");
    }

    #[test]
    fn gpu_read_without_translation_is_fatal() {
        let mut m = mem();
        let a = m.host_alloc(4096).unwrap();
        let mut buf = [0u8; 4];
        assert!(matches!(
            m.gpu_read(a.addr, &mut buf),
            Err(MemError::GpuFatalFault { .. })
        ));
    }

    #[test]
    fn copy_semantics_are_distinct_storage() {
        let mut m = mem();
        let h = m.host_alloc(4096).unwrap();
        let d = m.pool_alloc(4096).unwrap();
        m.cpu_write(h.addr, b"original").unwrap();
        m.copy(h.addr, d.addr, 8).unwrap();
        m.cpu_write(h.addr, b"mutated!").unwrap();
        let mut buf = [0u8; 8];
        m.gpu_read(d.addr, &mut buf).unwrap();
        assert_eq!(&buf, b"original");
        assert_eq!(m.stats().bytes_copied, 8);
    }

    #[test]
    fn copy_outside_allocation_rejected() {
        let mut m = mem();
        let h = m.host_alloc(4096).unwrap();
        assert!(m.copy(h.addr, VirtAddr(0xdead_beef), 8).is_err());
        assert!(m.copy(VirtAddr(0xdead_beef), h.addr, 8).is_err());
    }

    #[test]
    fn zero_sized_allocs_rejected() {
        let mut m = mem();
        assert!(matches!(
            m.host_alloc(0),
            Err(MemError::ZeroSizedAllocation)
        ));
        assert!(matches!(
            m.pool_alloc(0),
            Err(MemError::ZeroSizedAllocation)
        ));
    }

    #[test]
    fn oom_propagates() {
        let mut m = ApuMemory::with_capacity(CostModel::mi300a_no_thp(), 8 * 4096);
        assert!(m.host_alloc(16 * 4096).is_err());
    }

    #[test]
    fn prefault_outside_allocation_rejected() {
        let mut m = mem();
        let r = AddrRange::new(VirtAddr(0x1234_5000), 4096);
        assert!(matches!(
            m.prefault(r),
            Err(MemError::RangeOutsideAllocation { .. })
        ));
    }

    #[test]
    fn gpu_access_outside_allocation_rejected() {
        let mut m = mem();
        let r = AddrRange::new(VirtAddr(0x1234_5000), 4096);
        assert!(matches!(
            m.gpu_access(&[r], XnackMode::Enabled),
            Err(MemError::RangeOutsideAllocation { .. })
        ));
    }

    #[test]
    fn discrete_gpu_migrates_instead_of_replaying() {
        let spec = DiscreteSpec {
            vram_bytes: 64 * 4096,
            link_bandwidth: 25_000_000_000,
            migrate_per_page: VirtDuration::from_micros(25),
        };
        let mut m = ApuMemory::new_system(
            CostModel::mi300a_no_thp(),
            SystemKind::Discrete(spec.clone()),
        );
        let a = m.host_alloc(8 * 4096).unwrap();
        let r = AddrRange::new(a.addr, 8 * 4096);
        m.host_touch(r).unwrap();
        let o = m.gpu_access(&[r], XnackMode::Enabled).unwrap();
        assert_eq!(o.migrated_pages, 8);
        assert_eq!(o.replayed_pages, 0);
        assert_eq!(o.evicted_pages, 0);
        assert_eq!(o.stall, spec.migration_cost(4096) * 8);
        // Migration is far dearer than an APU replay of the same pages.
        let apu_cost = CostModel::mi300a_no_thp();
        assert!(o.stall > apu_cost.fault_stall(8, 0) * 10);
        // Second touch: resident, no further migration.
        let o2 = m.gpu_access(&[r], XnackMode::Enabled).unwrap();
        assert_eq!(o2.migrated_pages, 0);
    }

    #[test]
    fn vram_oversubscription_thrashes() {
        // 8 pages of VRAM, 16-page working set, cyclic sweeps: every access
        // re-migrates (the related-work [18] collapse).
        let spec = DiscreteSpec {
            vram_bytes: 8 * 4096,
            link_bandwidth: 25_000_000_000,
            migrate_per_page: VirtDuration::from_micros(25),
        };
        let mut m = ApuMemory::new_system(CostModel::mi300a_no_thp(), SystemKind::Discrete(spec));
        let a = m.host_alloc(16 * 4096).unwrap();
        let r = AddrRange::new(a.addr, 16 * 4096);
        m.host_touch(r).unwrap();
        let mut total_migrated = 0;
        for _ in 0..3 {
            let o = m.gpu_access(&[r], XnackMode::Enabled).unwrap();
            total_migrated += o.migrated_pages;
            assert!(o.evicted_pages >= 8);
        }
        assert_eq!(total_migrated, 48); // every sweep migrates all 16 pages
        assert!(m.um_resident_pages() <= 8);
    }

    #[test]
    fn vram_capacity_bounds_pool_allocations() {
        let spec = DiscreteSpec {
            vram_bytes: 16 * 4096,
            link_bandwidth: 25_000_000_000,
            migrate_per_page: VirtDuration::from_micros(25),
        };
        let mut m = ApuMemory::new_system(CostModel::mi300a_no_thp(), SystemKind::Discrete(spec));
        let a = m.pool_alloc(12 * 4096).unwrap();
        assert_eq!(m.vram_used(), 12 * 4096);
        // The APU would take this; the discrete device cannot.
        assert!(matches!(
            m.pool_alloc(8 * 4096),
            Err(MemError::OutOfMemory { .. })
        ));
        m.pool_free(a.addr).unwrap();
        assert_eq!(m.vram_used(), 0);
        assert!(m.pool_alloc(8 * 4096).is_ok());
    }

    #[test]
    fn discrete_copies_cross_the_link() {
        let spec = DiscreteSpec::mi200_class();
        let link = spec.link_bandwidth;
        let mut m = ApuMemory::new_system(CostModel::mi300a(), SystemKind::Discrete(spec));
        let h = m.host_alloc(1 << 24).unwrap();
        let d = m.pool_alloc(1 << 24).unwrap();
        let h2 = m.host_alloc(1 << 24).unwrap();
        // Host->device crosses the link; host->host moves at HBM speed.
        let cross = m.transfer_duration(h.addr, d.addr, 1 << 24);
        let local = m.transfer_duration(h.addr, h2.addr, 1 << 24);
        assert_eq!(cross, sim_des::transfer_time(1 << 24, link));
        assert!(cross > local * 3);
        // On the APU everything is HBM-to-HBM.
        let mut apu = ApuMemory::new(CostModel::mi300a());
        let ha = apu.host_alloc(1 << 24).unwrap();
        let da = apu.pool_alloc(1 << 24).unwrap();
        assert_eq!(
            apu.transfer_duration(ha.addr, da.addr, 1 << 24),
            apu.cost().copy_duration(1 << 24)
        );
    }

    #[test]
    fn discrete_prefetch_is_bulk_migration() {
        let spec = DiscreteSpec::mi200_class();
        let per_page = spec.migration_cost(4096);
        let mut m = ApuMemory::new_system(CostModel::mi300a_no_thp(), SystemKind::Discrete(spec));
        let a = m.host_alloc(8 * 4096).unwrap();
        let r = AddrRange::new(a.addr, 8 * 4096);
        m.host_touch(r).unwrap();
        let p = m.prefault(r).unwrap();
        assert_eq!(p.inserted_pages, 8);
        assert!(p.cost >= per_page * 8);
        // Prefetched pages are resident: access is free of migrations.
        let o = m.gpu_access(&[r], XnackMode::Enabled).unwrap();
        assert_eq!(o.migrated_pages, 0);
    }

    #[test]
    fn tlb_misses_charged_for_cold_translations() {
        let mut m = mem();
        let p = m.pool_alloc(4 * 4096).unwrap();
        let r = AddrRange::new(p.addr, 4 * 4096);
        // Pool alloc populated the page table but not the TLB.
        let o = m.gpu_access(&[r], XnackMode::Disabled).unwrap();
        assert_eq!(o.faulted_pages(), 0);
        assert_eq!(o.tlb_misses, 4);
        assert_eq!(o.stall, m.cost().tlb_miss * 4);
        let o2 = m.gpu_access(&[r], XnackMode::Disabled).unwrap();
        assert_eq!(o2.tlb_misses, 0);
    }
}
