//! Virtual/physical addresses, page sizes and address ranges.

use std::fmt;

/// A virtual address in the simulated unified address space.
///
/// On the APU, CPU and GPU threads use the *same* virtual addresses; whether
/// a given access translates on the GPU depends only on the GPU page table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    #[inline]
    /// Raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    #[inline]
    /// Address advanced by `bytes`.
    pub const fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }

    #[inline]
    /// Round down to the given power-of-two alignment.
    pub fn align_down(self, align: u64) -> VirtAddr {
        VirtAddr(self.0 & !(align - 1))
    }

    #[inline]
    /// True when aligned to the given power-of-two boundary.
    pub fn is_aligned(self, align: u64) -> bool {
        self.0 & (align - 1) == 0
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

/// A physical address in the single APU HBM storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    #[inline]
    /// Raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    #[inline]
    /// Address advanced by `bytes`.
    pub const fn offset(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phys:0x{:012x}", self.0)
    }
}

/// Page granularity. The paper runs with Transparent Huge Pages so that both
/// Copy and zero-copy configurations work on 2 MiB pages; 4 KiB is kept for
/// the page-size ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageSize {
    /// 4 KiB base pages.
    Small,
    /// 2 MiB transparent huge pages (the paper's configuration).
    Huge,
}

impl PageSize {
    #[inline]
    /// Size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Small => 4 * 1024,
            PageSize::Huge => 2 * 1024 * 1024,
        }
    }

    /// Number of pages needed to cover `len` bytes starting at `addr`.
    pub fn pages_covering(self, addr: VirtAddr, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let ps = self.bytes();
        let first = addr.as_u64() / ps;
        let last = (addr.as_u64() + len - 1) / ps;
        last - first + 1
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Small => write!(f, "4KiB"),
            PageSize::Huge => write!(f, "2MiB"),
        }
    }
}

/// A half-open byte range `[start, start+len)` of virtual memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    /// Operation start time (includes queueing).
    pub start: VirtAddr,
    /// Number of entries.
    pub len: u64,
}

impl AddrRange {
    /// Create a new instance.
    pub fn new(start: VirtAddr, len: u64) -> Self {
        AddrRange { start, len }
    }

    #[inline]
    /// Operation completion time.
    pub fn end(&self) -> u64 {
        self.start.as_u64() + self.len
    }

    #[inline]
    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the item lies inside.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr.as_u64() >= self.start.as_u64() && addr.as_u64() < self.end()
    }

    /// True when `other` lies fully inside this range.
    pub fn contains_range(&self, other: &AddrRange) -> bool {
        other.is_empty()
            || (other.start.as_u64() >= self.start.as_u64() && other.end() <= self.end())
    }

    /// True when the two ranges share at least one byte.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.start.as_u64() < other.end()
            && other.start.as_u64() < self.end()
    }

    /// Iterate over the page indices (address / page size) this range touches.
    pub fn page_indices(&self, ps: PageSize) -> impl Iterator<Item = u64> {
        let bytes = ps.bytes();
        let (first, count) = if self.len == 0 {
            (0, 0)
        } else {
            let first = self.start.as_u64() / bytes;
            let last = (self.end() - 1) / bytes;
            (first, last - first + 1)
        };
        (0..count).map(move |i| first + i)
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, +{})", self.start, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_helpers() {
        let a = VirtAddr(0x1234);
        assert_eq!(a.align_down(0x1000).as_u64(), 0x1000);
        assert!(!a.is_aligned(0x1000));
        assert!(VirtAddr(0x2000).is_aligned(0x1000));
    }

    #[test]
    fn page_counts() {
        let ps = PageSize::Small;
        assert_eq!(ps.pages_covering(VirtAddr(0), 0), 0);
        assert_eq!(ps.pages_covering(VirtAddr(0), 1), 1);
        assert_eq!(ps.pages_covering(VirtAddr(0), 4096), 1);
        assert_eq!(ps.pages_covering(VirtAddr(0), 4097), 2);
        // Unaligned start straddles an extra page.
        assert_eq!(ps.pages_covering(VirtAddr(4000), 200), 2);
        assert_eq!(PageSize::Huge.bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn range_relations() {
        let r = AddrRange::new(VirtAddr(100), 50);
        assert!(r.contains(VirtAddr(100)));
        assert!(r.contains(VirtAddr(149)));
        assert!(!r.contains(VirtAddr(150)));
        assert!(r.contains_range(&AddrRange::new(VirtAddr(120), 10)));
        assert!(!r.contains_range(&AddrRange::new(VirtAddr(120), 100)));
        assert!(r.overlaps(&AddrRange::new(VirtAddr(149), 10)));
        assert!(!r.overlaps(&AddrRange::new(VirtAddr(150), 10)));
        assert!(r.contains_range(&AddrRange::new(VirtAddr(999), 0)));
    }

    #[test]
    fn page_indices_iteration() {
        let r = AddrRange::new(VirtAddr(4000), 200); // crosses 4096 boundary
        let pages: Vec<u64> = r.page_indices(PageSize::Small).collect();
        assert_eq!(pages, vec![0, 1]);
        let empty = AddrRange::new(VirtAddr(4000), 0);
        assert_eq!(empty.page_indices(PageSize::Small).count(), 0);
    }
}
