//! Virtual memory areas: live allocations in the unified address space.

use crate::addr::{AddrRange, PhysAddr, VirtAddr};
use std::collections::BTreeMap;

/// Which allocator produced a VMA. On the APU both back onto the same HBM;
/// the distinction drives page-table population policy, not placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backing {
    /// OS allocator (malloc/mmap) — CPU page table only; GPU entries appear
    /// via XNACK replay or host-side prefaulting.
    HostOs,
    /// ROCr memory-pool allocation — GPU page table bulk-populated at
    /// allocation time (the driver's XNACK-disabled behaviour).
    DevicePool,
}

/// One live allocation.
#[derive(Debug, Clone)]
pub struct Vma {
    /// Covered virtual byte range.
    pub range: AddrRange,
    /// Which allocator produced this VMA.
    pub backing: Backing,
    /// Physical base; pages are physically contiguous within a VMA.
    pub phys: PhysAddr,
}

/// Ordered table of live VMAs, keyed by start address.
#[derive(Debug, Default)]
pub struct VmaTable {
    map: BTreeMap<u64, Vma>,
}

impl VmaTable {
    /// Create a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Insert an entry.
    pub fn insert(&mut self, vma: Vma) {
        debug_assert!(
            self.find_overlap(&vma.range).is_none(),
            "VMA overlap at {}",
            vma.range
        );
        self.map.insert(vma.range.start.as_u64(), vma);
    }

    /// Remove the VMA starting exactly at `start`.
    pub fn remove(&mut self, start: VirtAddr) -> Option<Vma> {
        self.map.remove(&start.as_u64())
    }

    /// The VMA containing `addr`, if any.
    pub fn find(&self, addr: VirtAddr) -> Option<&Vma> {
        self.map
            .range(..=addr.as_u64())
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.range.contains(addr))
    }

    /// The VMA fully containing `range`, if any.
    pub fn find_covering(&self, range: &AddrRange) -> Option<&Vma> {
        self.find(range.start)
            .filter(|v| v.range.contains_range(range))
    }

    /// Any VMA overlapping `range`.
    pub fn find_overlap(&self, range: &AddrRange) -> Option<&Vma> {
        // A candidate either starts before `range` and extends into it, or
        // starts inside `range`.
        if let Some(v) = self.find(range.start) {
            if v.range.overlaps(range) {
                return Some(v);
            }
        }
        self.map
            .range(range.start.as_u64()..range.end())
            .next()
            .map(|(_, v)| v)
            .filter(|v| v.range.overlaps(range))
    }

    /// Iterate entries.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.map.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vma(start: u64, len: u64) -> Vma {
        Vma {
            range: AddrRange::new(VirtAddr(start), len),
            backing: Backing::HostOs,
            phys: PhysAddr(0),
        }
    }

    #[test]
    fn find_by_containment() {
        let mut t = VmaTable::new();
        t.insert(vma(1000, 100));
        t.insert(vma(5000, 100));
        assert!(t.find(VirtAddr(1050)).is_some());
        assert!(t.find(VirtAddr(1100)).is_none());
        assert!(t.find(VirtAddr(999)).is_none());
        assert!(t.find(VirtAddr(5099)).is_some());
    }

    #[test]
    fn find_covering_requires_full_containment() {
        let mut t = VmaTable::new();
        t.insert(vma(1000, 100));
        assert!(t
            .find_covering(&AddrRange::new(VirtAddr(1010), 50))
            .is_some());
        assert!(t
            .find_covering(&AddrRange::new(VirtAddr(1090), 50))
            .is_none());
    }

    #[test]
    fn overlap_detection() {
        let mut t = VmaTable::new();
        t.insert(vma(1000, 100));
        assert!(t
            .find_overlap(&AddrRange::new(VirtAddr(950), 100))
            .is_some());
        assert!(t
            .find_overlap(&AddrRange::new(VirtAddr(1050), 10))
            .is_some());
        assert!(t
            .find_overlap(&AddrRange::new(VirtAddr(2000), 10))
            .is_none());
    }

    #[test]
    fn remove_exact_start_only() {
        let mut t = VmaTable::new();
        t.insert(vma(1000, 100));
        assert!(t.remove(VirtAddr(1001)).is_none());
        assert!(t.remove(VirtAddr(1000)).is_some());
        assert!(t.is_empty());
    }
}
