//! Memory-subsystem error type.

use crate::addr::VirtAddr;
use std::fmt;

/// Errors raised by the simulated memory subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// HBM exhausted.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// Access to a virtual address with no VMA / no CPU translation.
    UnmappedHostAccess {
        /// Faulting address.
        addr: VirtAddr,
    },
    /// GPU touched a page with no GPU page-table entry while XNACK was
    /// disabled: on real hardware this aborts the kernel (memory fault).
    GpuFatalFault {
        /// Faulting address.
        addr: VirtAddr,
    },
    /// Freeing an address that is not the start of a live allocation.
    InvalidFree {
        /// Address passed to the free call.
        addr: VirtAddr,
    },
    /// An allocation request of zero bytes.
    ZeroSizedAllocation,
    /// Prefault/copy request outside any live allocation.
    RangeOutsideAllocation {
        /// Start of the offending range.
        addr: VirtAddr,
        /// Length of the offending range.
        len: u64,
    },
    /// A failure injected by an attached [`sim_des::FaultPlan`]: the call
    /// had no functional effect and is safe to retry.
    Injected {
        /// Which fault site fired.
        kind: sim_des::FaultKind,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "out of HBM: requested {requested} bytes, {available} available"
                )
            }
            MemError::UnmappedHostAccess { addr } => {
                write!(f, "access to unmapped host address {addr}")
            }
            MemError::GpuFatalFault { addr } => write!(
                f,
                "GPU memory fault at {addr}: no GPU page-table entry and XNACK is disabled"
            ),
            MemError::InvalidFree { addr } => write!(f, "invalid free of {addr}"),
            MemError::ZeroSizedAllocation => write!(f, "zero-sized allocation"),
            MemError::RangeOutsideAllocation { addr, len } => {
                write!(
                    f,
                    "range [{addr}, +{len}) is not covered by a live allocation"
                )
            }
            MemError::Injected { kind } => {
                write!(f, "injected transient fault: {}", kind.label())
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MemError::GpuFatalFault {
            addr: VirtAddr(0x1000),
        };
        let s = e.to_string();
        assert!(s.contains("XNACK"));
        assert!(s.contains("0x000000001000"));
        let o = MemError::OutOfMemory {
            requested: 10,
            available: 5,
        }
        .to_string();
        assert!(o.contains("10") && o.contains('5'));
    }
}
