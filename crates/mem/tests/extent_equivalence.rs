//! Equivalence oracle: the extent fast paths must be *observably identical*
//! to the per-page reference implementation.
//!
//! Random allocate/touch/access/prefault/free sequences drive two
//! `ApuMemory` instances — one on the extent paths, one forced page-wise via
//! `set_pagewise(true)` — and every observable is compared after every
//! operation: `MemStats`, `GpuAccessOutcome`/`PrefaultOutcome` counters and
//! virtual-time charges, TLB hit/miss/eviction counts, page-table entry and
//! lifetime insert/remove counters, unified-memory residency, and error
//! values. Scenarios cover the APU, a capacity-starved TLB (so bulk runs
//! overflow and evict their own head), and a discrete GPU with VRAM
//! oversubscription (so eviction interleaves with migration mid-range).

use apu_mem::{
    AddrRange, ApuMemory, CostModel, DiscreteSpec, MemError, SystemKind, VirtAddr, XnackMode,
};
use proptest::prelude::*;

const PAGE: u64 = 4096;

/// One step of the interpreted op trace. Raw integers are folded onto live
/// allocations so every generated trace is meaningful.
#[derive(Debug, Clone, Copy)]
struct RawOp {
    opcode: u8,
    a: u64,
    b: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    Apu,
    TinyTlb,
    Discrete,
}

fn build(scenario: Scenario, pagewise: bool) -> ApuMemory {
    let mut cost = CostModel::mi300a_no_thp();
    if scenario == Scenario::TinyTlb {
        // Small enough that a single multi-page access overflows the TLB.
        cost.gpu_tlb_entries = 6;
    }
    let mut m = match scenario {
        Scenario::Discrete => {
            let spec = DiscreteSpec {
                // 10 pages of residency budget: mixed bulk + thrash regimes.
                vram_bytes: 10 * PAGE,
                link_bandwidth: 25_000_000_000,
                ..DiscreteSpec::mi200_class()
            };
            ApuMemory::new_system(cost, SystemKind::Discrete(spec))
        }
        _ => ApuMemory::with_capacity(cost, 64 * 1024 * 1024),
    };
    m.set_pagewise(pagewise);
    m
}

fn assert_same_error(fast: &MemError, slow: &MemError, step: usize) {
    assert_eq!(
        format!("{fast:?}"),
        format!("{slow:?}"),
        "step {step}: error mismatch"
    );
}

fn assert_states_agree(fast: &ApuMemory, slow: &ApuMemory, step: usize) {
    let fs = fast.stats();
    let ss = slow.stats();
    assert_eq!(
        format!("{fs:?}"),
        format!("{ss:?}"),
        "step {step}: MemStats"
    );
    assert_eq!(
        fast.cpu_pt().len(),
        slow.cpu_pt().len(),
        "step {step}: cpu pages"
    );
    assert_eq!(
        fast.gpu_pt().len(),
        slow.gpu_pt().len(),
        "step {step}: gpu pages"
    );
    assert_eq!(
        fast.cpu_pt().inserts(),
        slow.cpu_pt().inserts(),
        "step {step}: cpu inserts"
    );
    assert_eq!(
        fast.cpu_pt().removes(),
        slow.cpu_pt().removes(),
        "step {step}: cpu removes"
    );
    assert_eq!(
        fast.gpu_pt().inserts(),
        slow.gpu_pt().inserts(),
        "step {step}: gpu inserts"
    );
    assert_eq!(
        fast.gpu_pt().removes(),
        slow.gpu_pt().removes(),
        "step {step}: gpu removes"
    );
    assert_eq!(
        fast.gpu_tlb().hits(),
        slow.gpu_tlb().hits(),
        "step {step}: tlb hits"
    );
    assert_eq!(
        fast.gpu_tlb().misses(),
        slow.gpu_tlb().misses(),
        "step {step}: tlb misses"
    );
    assert_eq!(
        fast.gpu_tlb().evictions(),
        slow.gpu_tlb().evictions(),
        "step {step}: tlb evictions"
    );
    assert_eq!(
        fast.gpu_tlb().len(),
        slow.gpu_tlb().len(),
        "step {step}: tlb size"
    );
    assert_eq!(
        fast.um_resident_pages(),
        slow.um_resident_pages(),
        "step {step}: um resident"
    );
    assert_eq!(fast.vram_used(), slow.vram_used(), "step {step}: vram");
    assert_eq!(fast.live_vmas(), slow.live_vmas(), "step {step}: vmas");
}

/// Run one trace against both implementations, checking observables after
/// every step.
fn run_trace(scenario: Scenario, ops: &[RawOp]) {
    let mut fast = build(scenario, false);
    let mut slow = build(scenario, true);
    assert!(!fast.is_pagewise());
    assert!(slow.is_pagewise());
    // (addr, len, is_pool) of live allocations (identical on both sides).
    let mut live: Vec<(VirtAddr, u64, bool)> = Vec::new();
    for (step, op) in ops.iter().enumerate() {
        match op.opcode % 8 {
            // Allocate 1..=24 pages from the host or pool allocator.
            0 | 1 => {
                let len = (op.a % 24 + 1) * PAGE - op.b % 17;
                let pool = op.opcode % 8 == 1;
                let (rf, rs) = if pool {
                    (fast.pool_alloc(len), slow.pool_alloc(len))
                } else {
                    (fast.host_alloc(len), slow.host_alloc(len))
                };
                match (rf, rs) {
                    (Ok(f), Ok(s)) => {
                        assert_eq!(f.addr, s.addr, "step {step}: alloc addr");
                        assert_eq!(f.pages, s.pages, "step {step}: alloc pages");
                        assert_eq!(f.cost, s.cost, "step {step}: alloc cost");
                        live.push((f.addr, f.pages * PAGE, pool));
                    }
                    (Err(f), Err(s)) => assert_same_error(&f, &s, step),
                    (f, s) => panic!("step {step}: alloc divergence: {f:?} vs {s:?}"),
                }
            }
            // CPU first touch of a sub-range.
            2 => {
                let Some(&(addr, len, _)) = pick(&live, op.a) else {
                    continue;
                };
                let r = sub_range(addr, len, op.b);
                let rf = fast.host_touch(r);
                let rs = slow.host_touch(r);
                assert_eq!(rf.is_ok(), rs.is_ok(), "step {step}: touch ok");
                if let (Ok(f), Ok(s)) = (rf, rs) {
                    assert_eq!(f, s, "step {step}: touched pages");
                }
            }
            // GPU access of up to two sub-ranges, alternating XNACK modes.
            3 | 4 => {
                let Some(&(addr, len, _)) = pick(&live, op.a) else {
                    continue;
                };
                let mut ranges = vec![sub_range(addr, len, op.b)];
                if let Some(&(addr2, len2, _)) = pick(&live, op.a ^ op.b) {
                    ranges.push(sub_range(addr2, len2, op.b >> 7));
                }
                let xnack = if op.opcode % 8 == 4 && op.b % 5 == 0 {
                    XnackMode::Disabled
                } else {
                    XnackMode::Enabled
                };
                let rf = fast.gpu_access(&ranges, xnack);
                let rs = slow.gpu_access(&ranges, xnack);
                match (rf, rs) {
                    (Ok(f), Ok(s)) => {
                        assert_eq!(f.pages_touched, s.pages_touched, "step {step}: touched");
                        assert_eq!(f.replayed_pages, s.replayed_pages, "step {step}: replayed");
                        assert_eq!(
                            f.zero_filled_pages, s.zero_filled_pages,
                            "step {step}: zero-filled"
                        );
                        assert_eq!(f.tlb_misses, s.tlb_misses, "step {step}: tlb misses");
                        assert_eq!(f.migrated_pages, s.migrated_pages, "step {step}: migrated");
                        assert_eq!(f.evicted_pages, s.evicted_pages, "step {step}: evicted");
                        assert_eq!(f.stall, s.stall, "step {step}: stall");
                    }
                    (Err(f), Err(s)) => assert_same_error(&f, &s, step),
                    (f, s) => panic!("step {step}: access divergence: {f:?} vs {s:?}"),
                }
            }
            // Host-side prefault of a sub-range.
            5 => {
                let Some(&(addr, len, _)) = pick(&live, op.a) else {
                    continue;
                };
                let r = sub_range(addr, len, op.b);
                let rf = fast.prefault(r);
                let rs = slow.prefault(r);
                match (rf, rs) {
                    (Ok(f), Ok(s)) => {
                        assert_eq!(f.inserted_pages, s.inserted_pages, "step {step}: inserted");
                        assert_eq!(
                            f.zero_filled_pages, s.zero_filled_pages,
                            "step {step}: zero-filled"
                        );
                        assert_eq!(f.present_pages, s.present_pages, "step {step}: present");
                        assert_eq!(f.cost, s.cost, "step {step}: prefault cost");
                    }
                    (Err(f), Err(s)) => assert_same_error(&f, &s, step),
                    (f, s) => panic!("step {step}: prefault divergence: {f:?} vs {s:?}"),
                }
            }
            // Free one allocation (tears down both tables + TLB + residency).
            6 => {
                if live.is_empty() {
                    continue;
                }
                let idx = (op.a as usize) % live.len();
                let (addr, _, pool) = live.remove(idx);
                let (rf, rs) = if pool {
                    (fast.pool_free(addr), slow.pool_free(addr))
                } else {
                    (fast.host_free(addr), slow.host_free(addr))
                };
                match (rf, rs) {
                    (Ok(f), Ok(s)) => {
                        assert_eq!(f.pages, s.pages, "step {step}: freed pages");
                        assert_eq!(f.cost, s.cost, "step {step}: free cost");
                    }
                    (Err(f), Err(s)) => assert_same_error(&f, &s, step),
                    (f, s) => panic!("step {step}: free divergence: {f:?} vs {s:?}"),
                }
            }
            // CPU content write (touches pages) + read-back on both sides.
            _ => {
                let Some(&(addr, len, _)) = pick(&live, op.a) else {
                    continue;
                };
                let off = op.b % len;
                let n = ((op.a % 512) + 1).min(len - off) as usize;
                let data: Vec<u8> = (0..n).map(|i| (op.b as usize + i) as u8).collect();
                let at = addr.offset(off);
                fast.cpu_write(at, &data).unwrap();
                slow.cpu_write(at, &data).unwrap();
                let mut bf = vec![0u8; n];
                let mut bs = vec![0u8; n];
                fast.cpu_read(at, &mut bf).unwrap();
                slow.cpu_read(at, &mut bs).unwrap();
                assert_eq!(bf, bs, "step {step}: content");
            }
        }
        assert_states_agree(&fast, &slow, step);
    }
}

fn pick(live: &[(VirtAddr, u64, bool)], sel: u64) -> Option<&(VirtAddr, u64, bool)> {
    if live.is_empty() {
        None
    } else {
        live.get(sel as usize % live.len())
    }
}

/// A non-empty sub-range of `[addr, addr + len)` derived from `sel`,
/// intentionally not always page-aligned.
fn sub_range(addr: VirtAddr, len: u64, sel: u64) -> AddrRange {
    let off = sel % len;
    let max = len - off;
    let sub = (sel >> 13) % max + 1;
    AddrRange::new(addr.offset(off), sub)
}

fn raw_ops(max_len: usize) -> impl Strategy<Value = Vec<RawOp>> {
    proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 4..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(opcode, a, b)| RawOp { opcode, a, b })
            .collect()
    })
}

proptest! {
    /// APU with the production-sized TLB.
    #[test]
    fn apu_paths_are_equivalent(ops in raw_ops(48)) {
        run_trace(Scenario::Apu, &ops);
    }

    /// APU with a 6-entry TLB: bulk installs routinely overflow capacity,
    /// exercising the net-effect eviction algebra (including runs evicting
    /// their own head pages).
    #[test]
    fn tiny_tlb_paths_are_equivalent(ops in raw_ops(48)) {
        run_trace(Scenario::TinyTlb, &ops);
    }

    /// Discrete GPU with a 10-page VRAM budget: migration interleaves with
    /// unified-memory eviction, forcing the per-run thrash fallback.
    #[test]
    fn discrete_paths_are_equivalent(ops in raw_ops(40)) {
        run_trace(Scenario::Discrete, &ops);
    }
}

/// Directed regression: the 16-page cyclic sweep over an 8-page budget from
/// the thrashing unit test, stepped on both paths.
#[test]
fn discrete_thrash_sweep_is_equivalent() {
    let spec = DiscreteSpec {
        vram_bytes: 8 * PAGE,
        link_bandwidth: 25_000_000_000,
        ..DiscreteSpec::mi200_class()
    };
    let mut fast = ApuMemory::new_system(
        CostModel::mi300a_no_thp(),
        SystemKind::Discrete(spec.clone()),
    );
    let mut slow = ApuMemory::new_system(CostModel::mi300a_no_thp(), SystemKind::Discrete(spec));
    slow.set_pagewise(true);
    let af = fast.host_alloc(16 * PAGE).unwrap();
    let as_ = slow.host_alloc(16 * PAGE).unwrap();
    assert_eq!(af.addr, as_.addr);
    let r = AddrRange::new(af.addr, 16 * PAGE);
    fast.host_touch(r).unwrap();
    slow.host_touch(r).unwrap();
    for sweep in 0..3 {
        let of = fast.gpu_access(&[r], XnackMode::Enabled).unwrap();
        let os = slow.gpu_access(&[r], XnackMode::Enabled).unwrap();
        assert_eq!(of.migrated_pages, os.migrated_pages, "sweep {sweep}");
        assert_eq!(of.evicted_pages, os.evicted_pages, "sweep {sweep}");
        assert_eq!(of.stall, os.stall, "sweep {sweep}");
        assert_eq!(
            of.migrated_pages, 16,
            "sweep {sweep}: every page re-migrates"
        );
    }
    assert_states_agree(&fast, &slow, 999);
}
