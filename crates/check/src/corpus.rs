//! Golden corpus of minimal ill-formed programs.
//!
//! Each program is the smallest directive sequence that trips exactly one
//! diagnostic code under its designated configuration. They serve as the
//! cross-validation contract's executable specification: every program must
//! be flagged with its code by BOTH the static checker (over a capture of
//! the program) and the runtime sanitizer (during a real run), with the two
//! passes agreeing on the complete code list.
//!
//! Programs that model fatal conditions (MC005's unmapped raw access under
//! XNACK-off, MC006's partial overlap) abort the real run with an error —
//! the sanitizer's findings up to the abort are the diagnosis.

use apu_mem::AddrRange;
use omp_offload::{DiagCode, MapEntry, OmpError, OmpRuntime, RuntimeConfig, TargetRegion};
use sim_des::VirtDuration;
use workloads::Workload;

/// One deliberately-ill-formed program.
pub struct GoldenProgram {
    /// The code this program demonstrates.
    pub code: DiagCode,
    /// Short identifier.
    pub name: &'static str,
    /// Configuration under which the hazard manifests.
    pub config: RuntimeConfig,
    /// The program body. May return an error (some hazards are fatal at
    /// runtime); callers check the sanitizer afterwards either way.
    pub run: fn(&mut OmpRuntime) -> Result<(), OmpError>,
}

impl Workload for GoldenProgram {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn run(&self, rt: &mut OmpRuntime) -> Result<(), OmpError> {
        (self.run)(rt)
    }
}

const KB4: u64 = 4096;

fn kernel(name: &'static str) -> TargetRegion<'static> {
    TargetRegion::new(name, VirtDuration::from_micros(5))
}

/// MC001: enter without a matching exit — the mapping leaks.
fn leak(rt: &mut OmpRuntime) -> Result<(), OmpError> {
    let a = rt.host_alloc(0, KB4)?;
    let r = AddrRange::new(a, KB4);
    rt.host_write(0, r)?;
    rt.target_enter_data(0, &[MapEntry::to(r)])?;
    rt.target(0, kernel("leak").map(MapEntry::alloc(r)))
}

/// MC002: exit map of an extent that was never entered (fatal: the runtime
/// reports `NotMapped` right after the sanitizer records the hazard).
fn release_unmapped(rt: &mut OmpRuntime) -> Result<(), OmpError> {
    let a = rt.host_alloc(0, KB4)?;
    rt.target_exit_data(0, &[MapEntry::from(AddrRange::new(a, KB4))], false)
}

/// MC003: host writes after the to-transfer; the kernel then reads the
/// stale device copy (no `always`, no `target update to`).
fn stale_device_read(rt: &mut OmpRuntime) -> Result<(), OmpError> {
    let a = rt.host_alloc(0, KB4)?;
    let r = AddrRange::new(a, KB4);
    rt.host_write(0, r)?;
    rt.target_enter_data(0, &[MapEntry::to(r)])?;
    rt.host_write(0, r)?; // device copy is now stale
    rt.target(0, kernel("stale-read").map(MapEntry::to(r)))?;
    rt.target_exit_data(0, &[MapEntry::alloc(r)], false)
}

/// MC004: the host reads kernel-written data before the deferred `from`
/// transfer of a `nowait` region has run (classic result race).
fn stale_host_read(rt: &mut OmpRuntime) -> Result<(), OmpError> {
    let a = rt.host_alloc(0, KB4)?;
    let r = AddrRange::new(a, KB4);
    rt.host_write(0, r)?;
    rt.target_nowait(0, kernel("producer").map(MapEntry::tofrom(r)))?;
    rt.host_read(0, r); // from-transfer has not happened yet
    rt.taskwait(0)
}

/// MC005: raw host-pointer access with no map, under a configuration whose
/// GPU has no translation for it (fatal fault, paper §IV-B).
fn raw_access_no_xnack(rt: &mut OmpRuntime) -> Result<(), OmpError> {
    let a = rt.host_alloc(0, KB4)?;
    rt.target(0, kernel("usm-only").access(AddrRange::new(a, KB4)))
}

/// MC006: second map partially overlaps the first with mismatched bounds
/// (fatal: the runtime rejects partial overlaps).
fn overlapping_double_map(rt: &mut OmpRuntime) -> Result<(), OmpError> {
    let a = rt.host_alloc(0, 2 * KB4)?;
    rt.target_enter_data(0, &[MapEntry::to(AddrRange::new(a, KB4))])?;
    rt.target_enter_data(0, &[MapEntry::to(AddrRange::new(a.offset(KB4 / 2), KB4))])
}

/// MC007 (warning): re-mapping a present extent with a transfer direction
/// but no `always` — nothing is transferred, only the refcount moves; the
/// paper's zero-copy promotion candidate.
fn redundant_remap(rt: &mut OmpRuntime) -> Result<(), OmpError> {
    let a = rt.host_alloc(0, KB4)?;
    let r = AddrRange::new(a, KB4);
    rt.host_write(0, r)?;
    rt.target_enter_data(0, &[MapEntry::to(r)])?;
    rt.target(0, kernel("redundant").map(MapEntry::to(r)))?;
    rt.target_exit_data(0, &[MapEntry::alloc(r)], false)
}

/// The full corpus: one program per diagnostic code.
pub fn all() -> Vec<GoldenProgram> {
    vec![
        GoldenProgram {
            code: DiagCode::Mc001,
            name: "golden-mc001-leak",
            config: RuntimeConfig::LegacyCopy,
            run: leak,
        },
        GoldenProgram {
            code: DiagCode::Mc002,
            name: "golden-mc002-release-unmapped",
            config: RuntimeConfig::LegacyCopy,
            run: release_unmapped,
        },
        GoldenProgram {
            code: DiagCode::Mc003,
            name: "golden-mc003-stale-device-read",
            config: RuntimeConfig::LegacyCopy,
            run: stale_device_read,
        },
        GoldenProgram {
            code: DiagCode::Mc004,
            name: "golden-mc004-stale-host-read",
            config: RuntimeConfig::LegacyCopy,
            run: stale_host_read,
        },
        GoldenProgram {
            code: DiagCode::Mc005,
            name: "golden-mc005-raw-access-no-xnack",
            config: RuntimeConfig::LegacyCopy,
            run: raw_access_no_xnack,
        },
        GoldenProgram {
            code: DiagCode::Mc006,
            name: "golden-mc006-overlapping-double-map",
            config: RuntimeConfig::ImplicitZeroCopy,
            run: overlapping_double_map,
        },
        GoldenProgram {
            code: DiagCode::Mc007,
            name: "golden-mc007-redundant-remap",
            config: RuntimeConfig::EagerMaps,
            run: redundant_remap,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_every_code_exactly_once() {
        let corpus = all();
        let codes: Vec<_> = corpus.iter().map(|p| p.code).collect();
        assert_eq!(codes, DiagCode::ALL);
    }
}
