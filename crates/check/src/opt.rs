//! Whole-program static optimization of MapIR: mapping-plan synthesis.
//!
//! Where [`elision_plan`](crate::elision_plan()) marks individual MC007 sites
//! for the runtime to promote, this pass rewrites the *program*: it computes
//! per-extent liveness and reaching-transfer facts across the whole capture
//! and emits a new [`MapIr`] with the redundant map traffic removed before
//! the runtime ever sees it (the paper's conclusion that map handling, not
//! data movement, dominates zero-copy overhead — so the biggest win is map
//! work that never happens). Four rewrite rules, applied in order:
//!
//! 1. **Hoist** — a run of structurally identical op windows (a loop body,
//!    recognized by repeated-window equality) that re-maps the same extent
//!    every iteration is rewritten to map it once: a single enter/exit data
//!    pair brackets the loop and the per-iteration pairs disappear.
//! 2. **Dead `to`** — transfer-direction re-maps of already-present extents
//!    (the MC007 pattern [`elision_plan`](crate::elision_plan()) finds) are
//!    downgraded to `alloc` statically, baking the plan into the program so
//!    replay pays neither the transfer-decision service nor a lookup.
//! 3. **Dead `from`** — a from-copy whose host destination is never read
//!    again (no later `HostRead`, to-transfer, `update to`, or raw kernel
//!    access of the extent) is deleted by downgrading the map's direction.
//! 4. **Update downgrade** — `target update` ranges whose host and device
//!    version clocks (the [`check`](crate::check()) staleness model) already
//!    agree transfer nothing and are dropped; an update with no ranges left
//!    is deleted.
//!
//! Every rewrite preserves allocation order, refcount/presence behavior and
//! kernel launches, which is what the **equivalence contract** checks on
//! replay: bit-identical FNV memory digest, a sanitizer report no worse
//! than the baseline's (and free of errors), identical kernel count, and
//! `mm_total(optimized) <= mm_total(baseline)`. Ill-formed programs — any
//! error-severity diagnostic under an admissible configuration — are
//! refused outright, never rewritten.
//!
//! The pass finishes by replaying the optimized program under every
//! admissible configuration with the calibrated cost model and ranking them
//! by makespan: the [`OptReport`] recommends the cheapest `RuntimeConfig`
//! alongside the per-rule rewrite counts.

use crate::{check, elision_plan};
use apu_mem::{AddrRange, CostModel};
use hsa_rocr::Topology;
use omp_offload::{
    replay, replay_threads, DiagCode, Diagnostic, MapDir, MapEntry, MapIr, MapOp, MapRecord,
    OmpError, OmpRuntime, RuntimeConfig, Severity,
};
use sim_des::VirtDuration;
use std::collections::BTreeMap;
use std::fmt;

/// Longest op window considered a loop body by the hoist pass.
const MAX_WINDOW: usize = 64;

/// Per-rule rewrite counts and the ranked configuration recommendation.
#[derive(Debug, Clone)]
pub struct OptReport {
    /// Extents whose per-iteration map pairs were hoisted out of a loop.
    pub hoisted: usize,
    /// Dead to-transfers downgraded to `alloc` (static MC007 elision).
    pub dead_to: usize,
    /// Dead from-transfers deleted by direction downgrade.
    pub dead_from: usize,
    /// `target update` ranges dropped because the clocks already agreed.
    pub updates_dropped: usize,
    /// Admissible configurations ranked by optimized-replay makespan,
    /// cheapest first.
    pub recommendation: Vec<ConfigScore>,
}

/// One configuration's cost when replaying the optimized program.
#[derive(Debug, Clone, Copy)]
pub struct ConfigScore {
    /// The configuration replayed.
    pub config: RuntimeConfig,
    /// Total virtual execution time.
    pub makespan: VirtDuration,
    /// Memory-management overhead total (Table III).
    pub mm_total: VirtDuration,
}

impl OptReport {
    /// Total rewrites applied across all rules.
    pub fn rewrites(&self) -> usize {
        self.hoisted + self.dead_to + self.dead_from + self.updates_dropped
    }

    /// The cheapest configuration, when ranking ran.
    pub fn recommended(&self) -> Option<RuntimeConfig> {
        self.recommendation.first().map(|s| s.config)
    }
}

impl fmt::Display for OptReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "rewrites: {} hoisted, {} dead-to, {} dead-from, {} update range(s) dropped",
            self.hoisted, self.dead_to, self.dead_from, self.updates_dropped
        )?;
        writeln!(f, "config ranking (optimized replay, cheapest first):")?;
        for s in &self.recommendation {
            writeln!(
                f,
                "  {:<6} makespan {:>14}  mm_total {:>14}",
                s.config.token(),
                s.makespan.to_string(),
                s.mm_total.to_string()
            )?;
        }
        if let Some(best) = self.recommended() {
            write!(f, "recommended: {}", best.token())?;
        }
        Ok(())
    }
}

/// The optimizer's output: the rewritten program plus its report.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The rewritten program.
    pub ir: MapIr,
    /// Per-rule counts and the configuration recommendation.
    pub report: OptReport,
}

/// Why the optimizer refused a program.
#[derive(Debug)]
pub enum OptError {
    /// An error-severity diagnostic under an admissible configuration:
    /// ill-formed programs are rejected, never rewritten.
    IllFormed {
        /// The configuration the error was found under.
        config: RuntimeConfig,
        /// The error-severity diagnostics.
        diagnostics: Vec<Diagnostic>,
    },
    /// A ranking replay failed.
    Replay(OmpError),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::IllFormed {
                config,
                diagnostics,
            } => {
                write!(
                    f,
                    "refusing to optimize an ill-formed program: {} error(s) under {}",
                    diagnostics.len(),
                    config.label()
                )?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            OptError::Replay(e) => write!(f, "ranking replay failed: {e}"),
        }
    }
}

impl std::error::Error for OptError {}

/// Configurations a captured program can legally replay under: everything,
/// unless a kernel dereferences a raw host range outside every device-pool
/// allocation — then only the XNACK-enabled pair (elsewhere the access
/// faults fatally, which MC005 reports).
pub fn admissible_configs(ir: &MapIr) -> Vec<RuntimeConfig> {
    if has_unpooled_raw_access(ir) {
        vec![
            RuntimeConfig::UnifiedSharedMemory,
            RuntimeConfig::ImplicitZeroCopy,
        ]
    } else {
        RuntimeConfig::ALL.to_vec()
    }
}

/// Does any kernel dereference a raw host range not fully contained in a
/// device-pool allocation?
pub fn has_unpooled_raw_access(ir: &MapIr) -> bool {
    let pools: Vec<(u64, u64)> = ir
        .records
        .iter()
        .filter_map(|r| match &r.op {
            MapOp::PoolAlloc { range } => Some((range.start.as_u64(), range.end())),
            _ => None,
        })
        .collect();
    ir.records.iter().any(|r| match &r.op {
        MapOp::Kernel(k) => k.raw.iter().any(|raw| {
            let (lo, hi) = (raw.start.as_u64(), raw.end());
            !pools.iter().any(|&(plo, phi)| plo <= lo && hi <= phi)
        }),
        _ => false,
    })
}

/// Optimize a captured program.
///
/// Checks the program under every admissible configuration first and
/// refuses on any error-severity diagnostic; then applies the four rewrite
/// rules and ranks the admissible configurations by replaying the optimized
/// program under the calibrated MI300A cost model.
pub fn optimize(ir: &MapIr) -> Result<Optimized, OptError> {
    let configs = admissible_configs(ir);
    for &config in &configs {
        let errors: Vec<Diagnostic> = check(ir, config)
            .into_iter()
            .filter(|d| d.severity() == Severity::Error)
            .collect();
        if !errors.is_empty() {
            return Err(OptError::IllFormed {
                config,
                diagnostics: errors,
            });
        }
    }
    let mut out = ir.clone();
    let hoisted = hoist(&mut out);
    let dead_to = rewrite_planned(&mut out);
    let dead_from = rewrite_dead_from(&mut out);
    let updates_dropped = downgrade_updates(&mut out);
    let recommendation = rank_configs(&out, &configs).map_err(OptError::Replay)?;
    Ok(Optimized {
        ir: out,
        report: OptReport {
            hoisted,
            dead_to,
            dead_from,
            updates_dropped,
            recommendation,
        },
    })
}

fn rank_configs(ir: &MapIr, configs: &[RuntimeConfig]) -> Result<Vec<ConfigScore>, OmpError> {
    let mut scores = Vec::with_capacity(configs.len());
    for &config in configs {
        let mut rt = OmpRuntime::builder(CostModel::mi300a_no_thp(), Topology::default())
            .config(config)
            .threads(replay_threads(ir))
            .build()?;
        replay(&mut rt, ir)?;
        let report = rt.finish();
        scores.push(ConfigScore {
            config,
            makespan: report.makespan,
            mm_total: report.ledger.mm_total(),
        });
    }
    scores.sort_by_key(|s| s.makespan);
    Ok(scores)
}

// ---------------------------------------------------------------------------
// Shared symbolic state: the planner's presence/refcount table.
// ---------------------------------------------------------------------------

fn ranges_overlap(a: &AddrRange, b: &AddrRange) -> bool {
    a.start.as_u64() < b.end() && b.start.as_u64() < a.end()
}

/// Symbolic refcount table with `nowait` exit deferral — the presence half
/// of the checker, used by the hoist and dead-from passes.
#[derive(Default)]
struct Tracker {
    table: BTreeMap<u64, (AddrRange, u32)>,
    pending: BTreeMap<u32, Vec<MapEntry>>,
}

impl Tracker {
    fn containing(&self, r: &AddrRange) -> Option<(AddrRange, u32)> {
        self.table
            .range(..=r.start.as_u64())
            .next_back()
            .filter(|(_, (e, _))| e.contains(r.start) && e.contains_range(r))
            .map(|(_, (e, rc))| (*e, *rc))
    }

    fn present(&self, r: &AddrRange) -> bool {
        self.containing(r).is_some()
    }

    fn overlaps_live(&self, r: &AddrRange) -> bool {
        self.table.values().any(|(e, _)| ranges_overlap(e, r))
    }

    /// Refcount of the live extent fully containing `r` (0 when absent).
    fn refcount(&self, r: &AddrRange) -> u32 {
        self.containing(r).map_or(0, |(_, rc)| rc)
    }

    fn enter(&mut self, e: &MapEntry) {
        if let Some((range, _)) = self.containing(&e.range) {
            if let Some((_, rc)) = self.table.get_mut(&range.start.as_u64()) {
                *rc += 1;
            }
        } else if !self.overlaps_live(&e.range) {
            self.table.insert(e.range.start.as_u64(), (e.range, 1));
        }
        // Partial overlaps abort the real run; ill-formed programs never
        // reach the rewrite passes.
    }

    fn exit(&mut self, e: &MapEntry, delete: bool) {
        let Some((range, rc)) = self.containing(&e.range) else {
            return;
        };
        let key = range.start.as_u64();
        if rc == 1 || delete {
            self.table.remove(&key);
        } else if let Some((_, rc)) = self.table.get_mut(&key) {
            *rc -= 1;
        }
    }

    fn step(&mut self, thread: u32, op: &MapOp) {
        match op {
            MapOp::MapEnter { entry } => self.enter(entry),
            MapOp::MapExit { entry, delete } => self.exit(entry, *delete),
            MapOp::Kernel(k) => {
                for e in &k.maps {
                    self.enter(e);
                }
                if k.nowait {
                    self.pending
                        .entry(thread)
                        .or_default()
                        .extend(k.maps.iter().copied());
                } else {
                    for e in &k.maps {
                        self.exit(e, false);
                    }
                }
            }
            MapOp::Taskwait => {
                for e in self.pending.remove(&thread).unwrap_or_default() {
                    self.exit(&e, false);
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 1: hoist per-iteration map pairs out of recognized loops.
// ---------------------------------------------------------------------------

/// One extent hoisted out of a loop region.
struct HoistSite {
    range: AddrRange,
    enter: MapEntry,
    exit: MapEntry,
}

/// Find `(window_len, repeats)` at `i`: the smallest window that repeats at
/// least twice and contains a kernel launch (a loop body, not a coincidence
/// of bookkeeping ops).
fn find_repeat(recs: &[MapRecord], i: usize) -> Option<(usize, usize)> {
    let n = recs.len();
    for l in 1..=((n - i) / 2).min(MAX_WINDOW) {
        if recs[i..i + l] != recs[i + l..i + 2 * l] {
            continue;
        }
        if !recs[i..i + l]
            .iter()
            .any(|r| matches!(r.op, MapOp::Kernel(_)))
        {
            continue;
        }
        let mut k = 2;
        while i + (k + 1) * l <= n && recs[i..i + l] == recs[i + k * l..i + (k + 1) * l] {
            k += 1;
        }
        return Some((l, k));
    }
    None
}

/// Every map entry of extent `e` inside the window, in order.
fn window_maps_of<'a>(win: &'a [MapRecord], e: &AddrRange) -> Vec<&'a MapEntry> {
    let mut v = Vec::new();
    for r in win {
        match &r.op {
            MapOp::MapEnter { entry } if entry.range == *e => v.push(entry),
            MapOp::MapExit { entry, .. } if entry.range == *e => v.push(entry),
            MapOp::Kernel(k) => v.extend(k.maps.iter().filter(|m| m.range == *e)),
            _ => {}
        }
    }
    v
}

/// Is extent `e` safe to hoist out of this window? See the module docs for
/// the conditions; everything here is conservative — a rejected candidate
/// only costs an optimization.
fn hoistable(win: &[MapRecord], e: &AddrRange, pres: &Tracker) -> bool {
    // Absent (and not partially overlapped) at the loop boundary.
    if pres.overlaps_live(e) {
        return false;
    }
    let mut rc: i64 = 0;
    for r in win {
        match &r.op {
            MapOp::MapEnter { entry } => {
                if entry.range == *e {
                    if entry.always {
                        return false;
                    }
                    rc += 1;
                } else if ranges_overlap(&entry.range, e) {
                    return false;
                }
            }
            MapOp::MapExit { entry, delete } => {
                if entry.range == *e {
                    if entry.always || *delete || rc == 0 {
                        return false;
                    }
                    rc -= 1;
                } else if ranges_overlap(&entry.range, e) {
                    return false;
                }
            }
            MapOp::Kernel(k) => {
                // Kernel map pairs are balanced within the construct; only
                // exact, modifier-free entries of `e` are tolerated.
                let mut of_e = 0;
                for m in &k.maps {
                    if m.range == *e {
                        if m.always {
                            return false;
                        }
                        of_e += 1;
                    } else if ranges_overlap(&m.range, e) {
                        return false;
                    }
                }
                // Double maps of one extent in one construct interleave
                // refcounts in ways the pre-construct rule cannot see.
                if of_e > 1 {
                    return false;
                }
                if k.raw.iter().any(|r| ranges_overlap(r, e)) {
                    return false;
                }
            }
            // Host traffic into the extent pins the per-iteration copies.
            MapOp::HostRead { range } | MapOp::HostWrite { range } => {
                if ranges_overlap(range, e) {
                    return false;
                }
            }
            MapOp::Update { to, from } => {
                if to.iter().chain(from).any(|r| ranges_overlap(r, e)) {
                    return false;
                }
            }
            MapOp::HostAlloc { range } | MapOp::PoolAlloc { range } => {
                if ranges_overlap(range, e) {
                    return false;
                }
            }
            MapOp::HostFree { addr } | MapOp::PoolFree { addr } => {
                if e.contains(*addr) {
                    return false;
                }
            }
            MapOp::GlobalDecl { host, .. } => {
                if ranges_overlap(host, e) {
                    return false;
                }
            }
            MapOp::Taskwait => unreachable!("windows with taskwait are rejected up front"),
        }
    }
    // Transient within the window: the extent leaves the table at the
    // window boundary, so hoisting cannot change anything outside the loop.
    rc == 0
}

/// Hoist candidates for one repeated window, with their boundary dirs: the
/// hoisted enter transfers iff any window map transferred to the device,
/// the hoisted exit iff any transferred back.
fn hoist_candidates(win: &[MapRecord], pres: &Tracker) -> Vec<HoistSite> {
    if win
        .iter()
        .any(|r| matches!(r.op, MapOp::Taskwait) || matches!(&r.op, MapOp::Kernel(k) if k.nowait))
    {
        return Vec::new();
    }
    let mut seen: BTreeMap<u64, AddrRange> = BTreeMap::new();
    for r in win {
        match &r.op {
            MapOp::MapEnter { entry } | MapOp::MapExit { entry, .. } => {
                seen.insert(entry.range.start.as_u64(), entry.range);
            }
            MapOp::Kernel(k) => {
                for m in &k.maps {
                    seen.insert(m.range.start.as_u64(), m.range);
                }
            }
            _ => {}
        }
    }
    let mut sites = Vec::new();
    for e in seen.values() {
        if !hoistable(win, e, pres) {
            continue;
        }
        let maps = window_maps_of(win, e);
        let to = maps.iter().any(|m| m.dir.copies_to());
        let from = maps.iter().any(|m| m.dir.copies_from());
        sites.push(HoistSite {
            range: *e,
            enter: MapEntry {
                range: *e,
                dir: if to { MapDir::To } else { MapDir::Alloc },
                always: false,
            },
            exit: MapEntry {
                range: *e,
                dir: if from { MapDir::From } else { MapDir::Alloc },
                always: false,
            },
        });
    }
    sites
}

/// Rewrite recognized loops: bracket each with one enter/exit data pair per
/// hoisted extent and delete the per-iteration maps — standalone
/// enter/exit pairs vanish, and kernel constructs shed their map entries of
/// hoisted extents (the bracketing pair holds the extent present, so the
/// per-iteration entries are pure bookkeeping whose re-map cost Eager Maps
/// would still charge). Net map-entry count strictly drops: ≥2 entries
/// leave, exactly 2 arrive.
fn hoist(ir: &mut MapIr) -> usize {
    // Interleaved multi-threaded captures have no stable window structure.
    if ir.records.iter().any(|r| r.thread != 0) {
        return 0;
    }
    let recs = std::mem::take(&mut ir.records);
    let n = recs.len();
    let mut out: Vec<MapRecord> = Vec::with_capacity(n);
    let mut pres = Tracker::default();
    let mut hoisted = 0;
    let mut i = 0;
    while i < n {
        if let Some((l, k)) = find_repeat(&recs, i) {
            let sites = hoist_candidates(&recs[i..i + l], &pres);
            if !sites.is_empty() {
                for s in &sites {
                    out.push(MapRecord {
                        thread: 0,
                        op: MapOp::MapEnter { entry: s.enter },
                    });
                }
                for rec in &recs[i..i + k * l] {
                    match &rec.op {
                        MapOp::MapEnter { entry } | MapOp::MapExit { entry, .. }
                            if sites.iter().any(|s| s.range == entry.range) => {}
                        MapOp::Kernel(kop)
                            if kop
                                .maps
                                .iter()
                                .any(|m| sites.iter().any(|s| s.range == m.range)) =>
                        {
                            let mut k2 = kop.clone();
                            k2.maps
                                .retain(|m| !sites.iter().any(|s| s.range == m.range));
                            out.push(MapRecord {
                                thread: rec.thread,
                                op: MapOp::Kernel(k2),
                            });
                        }
                        _ => out.push(rec.clone()),
                    }
                }
                for s in sites.iter().rev() {
                    out.push(MapRecord {
                        thread: 0,
                        op: MapOp::MapExit {
                            entry: s.exit,
                            delete: false,
                        },
                    });
                }
                hoisted += sites.len();
                for rec in &recs[i..i + k * l] {
                    pres.step(rec.thread, &rec.op);
                }
                i += k * l;
                continue;
            }
        }
        pres.step(recs[i].thread, &recs[i].op);
        out.push(recs[i].clone());
        i += 1;
    }
    ir.records = out;
    hoisted
}

// ---------------------------------------------------------------------------
// Rule 2: bake the elision plan into the program.
// ---------------------------------------------------------------------------

/// Downgrade every planned MC007 site to `alloc`: the static form of plan-
/// mode elision, with no runtime mode needed on replay.
fn rewrite_planned(ir: &mut MapIr) -> usize {
    let plan = elision_plan(ir);
    if plan.is_empty() {
        return 0;
    }
    let mut n = 0;
    for (idx, rec) in ir.records.iter_mut().enumerate() {
        match &mut rec.op {
            MapOp::MapEnter { entry } if plan.contains(idx as u64, 0) => {
                *entry = MapEntry::alloc(entry.range);
                n += 1;
            }
            MapOp::Kernel(k) => {
                for (m, e) in k.maps.iter_mut().enumerate() {
                    if plan.contains(idx as u64, m as u32) {
                        *e = MapEntry::alloc(e.range);
                        n += 1;
                    }
                }
            }
            _ => {}
        }
    }
    n
}

// ---------------------------------------------------------------------------
// Rule 3: delete from-copies whose host destination is never read again.
// ---------------------------------------------------------------------------

/// Does anything at `recs` read the host content of `r`? A later host read,
/// to-transfer (re-publishing host content to the device), `update to`, or
/// raw kernel access keeps the from-copy live.
fn host_read_later(recs: &[MapRecord], r: &AddrRange) -> bool {
    recs.iter().any(|rec| match &rec.op {
        MapOp::HostRead { range } => ranges_overlap(range, r),
        MapOp::MapEnter { entry } => entry.dir.copies_to() && ranges_overlap(&entry.range, r),
        MapOp::Kernel(k) => {
            k.maps
                .iter()
                .any(|e| e.dir.copies_to() && ranges_overlap(&e.range, r))
                || k.raw.iter().any(|x| ranges_overlap(x, r))
        }
        MapOp::Update { to, .. } => to.iter().any(|x| ranges_overlap(x, r)),
        _ => false,
    })
}

/// The direction left after deleting an entry's from-copy.
fn drop_from(e: &MapEntry) -> MapEntry {
    MapEntry {
        range: e.range,
        dir: match e.dir {
            MapDir::ToFrom => MapDir::To,
            _ => MapDir::Alloc,
        },
        // `always` only modified the deleted from-copy on these sites (the
        // enter side of an always-from map transfers nothing).
        always: e.always && e.dir == MapDir::ToFrom,
    }
}

/// Rewrite every map whose from-copy actually fires on replay — an `always`
/// map, a transient kernel map, or a disappearing/`always` exit — but whose
/// host destination is never read afterwards.
fn rewrite_dead_from(ir: &mut MapIr) -> usize {
    let mut t = Tracker::default();
    let mut n = 0;
    for j in 0..ir.records.len() {
        let (head, tail) = ir.records.split_at_mut(j + 1);
        let rec = &mut head[j];
        match &mut rec.op {
            MapOp::MapExit { entry, delete } => {
                let fires = entry.dir.copies_from()
                    && (entry.always || *delete || t.refcount(&entry.range) == 1);
                if fires && !host_read_later(tail, &entry.range) {
                    *entry = drop_from(entry);
                    n += 1;
                }
            }
            MapOp::Kernel(k) if !k.nowait => {
                // Judged against the pre-construct table, like the checker:
                // a transient map's exit disappears (copy fires); a present
                // re-map's exit only copies under `always`.
                let fires: Vec<bool> = k
                    .maps
                    .iter()
                    .map(|e| {
                        e.dir.copies_from()
                            && (e.always || !t.present(&e.range))
                            && k.maps.iter().filter(|m| m.range == e.range).count() == 1
                    })
                    .collect();
                for (e, f) in k.maps.iter_mut().zip(fires) {
                    if f && !host_read_later(tail, &e.range) {
                        *e = drop_from(e);
                        n += 1;
                    }
                }
            }
            _ => {}
        }
        t.step(rec.thread, &rec.op);
    }
    n
}

// ---------------------------------------------------------------------------
// Rule 4: drop update ranges whose version clocks already agree.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct ClockExt {
    range: AddrRange,
    refcount: u32,
    host_v: u64,
    dev_v: u64,
}

/// The checker's Copy-mode version-clock model, replayed over the rewritten
/// stream to identify no-op `target update` ranges.
#[derive(Default)]
struct Clocks {
    table: BTreeMap<u64, ClockExt>,
    pending: BTreeMap<u32, Vec<MapEntry>>,
    tick: u64,
}

impl Clocks {
    fn containing(&self, r: &AddrRange) -> Option<&ClockExt> {
        self.table
            .range(..=r.start.as_u64())
            .next_back()
            .map(|(_, e)| e)
            .filter(|e| e.range.contains(r.start) && e.range.contains_range(r))
    }

    fn containing_mut(&mut self, r: &AddrRange) -> Option<&mut ClockExt> {
        self.table
            .range_mut(..=r.start.as_u64())
            .next_back()
            .map(|(_, e)| e)
            .filter(|e| e.range.contains(r.start) && e.range.contains_range(r))
    }

    /// Present with `dev_v == host_v`: an `update to` here copies nothing new.
    fn device_current(&self, r: &AddrRange) -> bool {
        self.containing(r).is_some_and(|e| e.dev_v == e.host_v)
    }

    /// Present with `host_v == dev_v`: an `update from` here copies nothing new.
    fn host_current(&self, r: &AddrRange) -> bool {
        self.containing(r).is_some_and(|e| e.host_v == e.dev_v)
    }

    fn enter(&mut self, e: &MapEntry) {
        let key = self.containing(&e.range).map(|x| x.range.start.as_u64());
        if let Some(key) = key {
            let x = self.table.get_mut(&key).expect("present extent");
            x.refcount += 1;
            if e.always && e.dir.copies_to() {
                x.dev_v = x.host_v;
            }
        } else if !self
            .table
            .values()
            .any(|x| ranges_overlap(&x.range, &e.range))
        {
            self.tick += 1;
            let tick = self.tick;
            self.table.insert(
                e.range.start.as_u64(),
                ClockExt {
                    range: e.range,
                    refcount: 1,
                    host_v: tick,
                    dev_v: if e.dir.copies_to() { tick } else { 0 },
                },
            );
        }
    }

    fn exit(&mut self, e: &MapEntry, delete: bool) {
        let Some((key, refcount)) = self
            .containing(&e.range)
            .map(|x| (x.range.start.as_u64(), x.refcount))
        else {
            return;
        };
        let disappearing = refcount == 1 || delete;
        let x = self.table.get_mut(&key).expect("present extent");
        if e.dir.copies_from() && (disappearing || e.always) {
            x.host_v = x.dev_v;
        }
        if disappearing {
            self.table.remove(&key);
        } else {
            x.refcount -= 1;
        }
    }

    fn step(&mut self, thread: u32, op: &MapOp) {
        match op {
            MapOp::HostWrite { range } => {
                self.tick += 1;
                let tick = self.tick;
                for x in self.table.values_mut() {
                    if ranges_overlap(&x.range, range) {
                        x.host_v = tick;
                    }
                }
            }
            MapOp::MapEnter { entry } => self.enter(entry),
            MapOp::MapExit { entry, delete } => self.exit(entry, *delete),
            MapOp::Update { to, from } => {
                for range in to {
                    if let Some(x) = self.containing_mut(range) {
                        x.dev_v = x.host_v;
                    }
                }
                for range in from {
                    if let Some(x) = self.containing_mut(range) {
                        x.host_v = x.dev_v;
                    }
                }
            }
            MapOp::Kernel(k) => {
                for e in &k.maps {
                    self.enter(e);
                }
                for e in k.maps.iter().filter(|e| e.dir.copies_from()) {
                    self.tick += 1;
                    let tick = self.tick;
                    if let Some(x) = self.containing_mut(&e.range) {
                        x.dev_v = tick;
                    }
                }
                if k.nowait {
                    self.pending
                        .entry(thread)
                        .or_default()
                        .extend(k.maps.iter().copied());
                } else {
                    for e in &k.maps {
                        self.exit(e, false);
                    }
                }
            }
            MapOp::Taskwait => {
                for e in self.pending.remove(&thread).unwrap_or_default() {
                    self.exit(&e, false);
                }
            }
            _ => {}
        }
    }
}

/// Drop `target update` ranges that transfer between already-agreeing
/// clocks; delete updates left with no ranges at all.
fn downgrade_updates(ir: &mut MapIr) -> usize {
    let mut clocks = Clocks::default();
    let mut n = 0;
    for rec in &mut ir.records {
        if let MapOp::Update { to, from } = &mut rec.op {
            to.retain(|r| {
                let keep = !clocks.device_current(r);
                n += usize::from(!keep);
                keep
            });
            from.retain(|r| {
                let keep = !clocks.host_current(r);
                n += usize::from(!keep);
                keep
            });
        }
        clocks.step(rec.thread, &rec.op);
    }
    if n > 0 {
        ir.records.retain(
            |r| !matches!(&r.op, MapOp::Update { to, from } if to.is_empty() && from.is_empty()),
        );
    }
    n
}

// ---------------------------------------------------------------------------
// The equivalence contract, checked on replay.
// ---------------------------------------------------------------------------

/// One sanitized replay leg: the facts the contract compares.
#[derive(Debug, Clone)]
pub struct ReplayProbe {
    /// FNV digest of live memory after the full replay.
    pub digest: u64,
    /// Kernel launches.
    pub kernels: u64,
    /// Memory-management overhead total (Table III).
    pub mm_total: VirtDuration,
    /// Sanitizer findings.
    pub codes: Vec<DiagCode>,
    /// Error-severity findings among them.
    pub errors: usize,
}

/// Replay `ir` under `config` with the sanitizer on and collect the facts
/// the equivalence contract compares.
pub fn replay_probe(ir: &MapIr, config: RuntimeConfig) -> Result<ReplayProbe, OmpError> {
    let mut rt = OmpRuntime::builder(CostModel::mi300a_no_thp(), Topology::default())
        .config(config)
        .threads(replay_threads(ir))
        .sanitize(true)
        .build()?;
    replay(&mut rt, ir)?;
    let digest = rt.memory_digest();
    let ledger = *rt.ledger();
    let diags = rt.sanitizer_finalize();
    let errors = diags
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count();
    let mut codes: Vec<DiagCode> = diags.iter().map(|d| d.code).collect();
    codes.sort();
    Ok(ReplayProbe {
        digest,
        kernels: ledger.kernels,
        mm_total: ledger.mm_total(),
        codes,
        errors,
    })
}

/// The verdict of one `(baseline, optimized, config)` equivalence check.
#[derive(Debug, Clone)]
pub struct Equivalence {
    /// Configuration replayed under.
    pub config: RuntimeConfig,
    /// Baseline facts (unoptimized replay).
    pub baseline: ReplayProbe,
    /// Optimized facts.
    pub optimized: ReplayProbe,
}

impl Equivalence {
    /// The load-bearing contract: bit-identical memory digest, identical
    /// kernel count, an error-free sanitizer report introducing no code the
    /// baseline lacks, and no added memory-management overhead.
    pub fn holds(&self) -> bool {
        self.baseline.digest == self.optimized.digest
            && self.baseline.kernels == self.optimized.kernels
            && self.optimized.errors == 0
            && self
                .optimized
                .codes
                .iter()
                .all(|c| self.baseline.codes.contains(c))
            && self.optimized.mm_total <= self.baseline.mm_total
    }

    /// Map-management time the optimization removed.
    pub fn mm_saved(&self) -> VirtDuration {
        // Saturating: a broken contract (optimized costs more) reads as a
        // zero saving rather than a panic in reporting paths.
        self.baseline
            .mm_total
            .saturating_sub(self.optimized.mm_total)
    }
}

/// Replay both programs under `config` and compare them under the contract.
pub fn verify_equivalence(
    baseline: &MapIr,
    optimized: &MapIr,
    config: RuntimeConfig,
) -> Result<Equivalence, OmpError> {
    Ok(Equivalence {
        config,
        baseline: replay_probe(baseline, config)?,
        optimized: replay_probe(optimized, config)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture_run;
    use omp_offload::TargetRegion;

    const KB4: u64 = 4096;

    fn kernel(name: &'static str) -> TargetRegion<'static> {
        TargetRegion::new(name, VirtDuration::from_micros(5))
    }

    fn assert_contract(original: &MapIr, opt: &Optimized) {
        assert_eq!(original.kernels(), opt.ir.kernels(), "kernel count");
        for config in admissible_configs(original) {
            let eq = verify_equivalence(original, &opt.ir, config).expect("replays succeed");
            assert!(
                eq.holds(),
                "{}: contract broken: {eq:?}\nreport: {}",
                config.label(),
                opt.report
            );
        }
    }

    /// A loop of per-iteration enter/exit pairs around a kernel: hoisted to
    /// one pair, and the kernel maps (now present re-maps) elided.
    fn loop_pairs(rt: &mut OmpRuntime) -> Result<(), OmpError> {
        let a = rt.host_alloc(0, KB4)?;
        let r = AddrRange::new(a, KB4);
        rt.host_write(0, r)?;
        for _ in 0..4 {
            rt.target_enter_data(0, &[MapEntry::to(r)])?;
            rt.target(0, kernel("iter").map(MapEntry::alloc(r)))?;
            rt.target_exit_data(0, &[MapEntry::from(r)], false)?;
        }
        rt.host_read(0, r);
        rt.host_free(0, a)
    }

    #[test]
    fn hoists_per_iteration_pairs_into_one() {
        let ir = capture_run(1, loop_pairs).unwrap();
        let opt = optimize(&ir).unwrap();
        assert_eq!(opt.report.hoisted, 1, "{}", opt.report);
        // 4 enters + 4 exits collapse to 1 + 1.
        let enters = |ir: &MapIr| {
            ir.records
                .iter()
                .filter(|r| matches!(r.op, MapOp::MapEnter { .. }))
                .count()
        };
        assert_eq!(enters(&ir), 4);
        assert_eq!(enters(&opt.ir), 1);
        assert_contract(&ir, &opt);
    }

    /// Per-iteration transient kernel maps: the tofrom re-map itself is the
    /// loop body. Hoisting brackets the loop; the final from-copy survives
    /// because the host reads the buffer afterwards.
    fn loop_kernel_maps(rt: &mut OmpRuntime) -> Result<(), OmpError> {
        let a = rt.host_alloc(0, KB4)?;
        let r = AddrRange::new(a, KB4);
        rt.host_write(0, r)?;
        for _ in 0..5 {
            rt.target(0, kernel("body").map(MapEntry::tofrom(r)))?;
        }
        rt.host_read(0, r);
        rt.host_free(0, a)
    }

    #[test]
    fn hoists_transient_kernel_maps_and_keeps_the_live_from() {
        let ir = capture_run(1, loop_kernel_maps).unwrap();
        let opt = optimize(&ir).unwrap();
        assert_eq!(opt.report.hoisted, 1, "{}", opt.report);
        // The loop's kernel map entries are deleted outright — the
        // bracketing pair holds the extent; nothing is left for dead-to.
        assert_eq!(opt.report.dead_to, 0, "{}", opt.report);
        assert_eq!(opt.report.dead_from, 0, "{}", opt.report);
        let kernel_maps: usize = opt
            .ir
            .records
            .iter()
            .filter_map(|r| match &r.op {
                MapOp::Kernel(k) => Some(k.maps.len()),
                _ => None,
            })
            .sum();
        assert_eq!(kernel_maps, 0, "hoisted kernel maps must be deleted");
        let last = opt.ir.records.iter().rev().find_map(|r| match &r.op {
            MapOp::MapExit { entry, .. } => Some(*entry),
            _ => None,
        });
        assert_eq!(last.unwrap().dir, MapDir::From);
        assert_contract(&ir, &opt);
    }

    /// An always-from reduction map re-read never: the per-iteration
    /// device-to-host copies are dead, as is the final from-exit.
    fn dead_from_copies(rt: &mut OmpRuntime) -> Result<(), OmpError> {
        let a = rt.host_alloc(0, KB4)?;
        let r = AddrRange::new(a, KB4);
        rt.host_write(0, r)?;
        rt.target_enter_data(0, &[MapEntry::to(r)])?;
        rt.target(0, kernel("reduce").map(MapEntry::from(r).always()))?;
        rt.target(0, kernel("reduce").map(MapEntry::from(r).always()))?;
        rt.target_exit_data(0, &[MapEntry::from(r)], false)?;
        rt.host_free(0, a)
    }

    #[test]
    fn deletes_dead_from_transfers() {
        let ir = capture_run(1, dead_from_copies).unwrap();
        let opt = optimize(&ir).unwrap();
        assert_eq!(opt.report.dead_from, 3, "{}", opt.report);
        let copy_base = replay_probe(&ir, RuntimeConfig::LegacyCopy).unwrap();
        let copy_opt = replay_probe(&opt.ir, RuntimeConfig::LegacyCopy).unwrap();
        assert!(
            copy_opt.mm_total < copy_base.mm_total,
            "dead from-copies must cut mm_total: {copy_opt:?} vs {copy_base:?}"
        );
        assert_contract(&ir, &opt);
    }

    /// A host read pins the from-copy: nothing to delete.
    fn live_from_copy(rt: &mut OmpRuntime) -> Result<(), OmpError> {
        let a = rt.host_alloc(0, KB4)?;
        let r = AddrRange::new(a, KB4);
        rt.host_write(0, r)?;
        rt.target_enter_data(0, &[MapEntry::to(r)])?;
        rt.target(0, kernel("produce").map(MapEntry::from(r).always()))?;
        rt.target_exit_data(0, &[MapEntry::from(r)], false)?;
        rt.host_read(0, r);
        rt.host_free(0, a)
    }

    #[test]
    fn keeps_from_transfers_the_host_reads() {
        let ir = capture_run(1, live_from_copy).unwrap();
        let opt = optimize(&ir).unwrap();
        assert_eq!(opt.report.dead_from, 0, "{}", opt.report);
        assert_contract(&ir, &opt);
    }

    /// `update to` right after the to-transfer, with no host write between:
    /// the clocks agree, the update transfers nothing, the op disappears.
    fn redundant_update(rt: &mut OmpRuntime) -> Result<(), OmpError> {
        let a = rt.host_alloc(0, KB4)?;
        let r = AddrRange::new(a, KB4);
        rt.host_write(0, r)?;
        rt.target_enter_data(0, &[MapEntry::to(r)])?;
        rt.target_update(0, &[r], &[])?;
        rt.host_write(0, r)?;
        rt.target_update(0, &[r], &[])?; // live: republishes the new write
        rt.target(0, kernel("consume").map(MapEntry::alloc(r)))?;
        rt.target_exit_data(0, &[MapEntry::alloc(r)], false)?;
        rt.host_free(0, a)
    }

    #[test]
    fn drops_redundant_update_ranges_only() {
        let ir = capture_run(1, redundant_update).unwrap();
        let opt = optimize(&ir).unwrap();
        assert_eq!(opt.report.updates_dropped, 1, "{}", opt.report);
        let updates = |ir: &MapIr| {
            ir.records
                .iter()
                .filter(|r| matches!(r.op, MapOp::Update { .. }))
                .count()
        };
        assert_eq!(updates(&ir), 2);
        assert_eq!(updates(&opt.ir), 1);
        assert_contract(&ir, &opt);
    }

    #[test]
    fn refuses_ill_formed_programs() {
        for p in crate::corpus::all() {
            let ir = capture_run(1, |rt| (p.run)(rt)).expect("capture never faults");
            match optimize(&ir) {
                Err(OptError::IllFormed { diagnostics, .. }) => {
                    assert!(!diagnostics.is_empty(), "{}", p.name);
                }
                other => match p.code {
                    // MC007 is a warning, not an error: the redundant-remap
                    // program is accepted and rewritten.
                    DiagCode::Mc007 => {
                        let opt = other.expect("MC007 program optimizes");
                        assert_eq!(opt.report.dead_to, 1);
                        assert_contract(&ir, &opt);
                    }
                    // MC005's hazard only exists under XNACK-off
                    // configurations, which are not admissible for a raw-
                    // access program: it is accepted and left untouched.
                    DiagCode::Mc005 => {
                        let opt = other.expect("raw-access program optimizes");
                        assert_eq!(opt.report.rewrites(), 0);
                        assert_contract(&ir, &opt);
                    }
                    _ => panic!("{} must be refused, got {other:?}", p.name),
                },
            }
        }
    }

    #[test]
    fn ranks_every_admissible_config_and_recommends_the_cheapest() {
        let ir = capture_run(1, loop_pairs).unwrap();
        let opt = optimize(&ir).unwrap();
        assert_eq!(opt.report.recommendation.len(), RuntimeConfig::ALL.len());
        assert!(opt
            .report
            .recommendation
            .windows(2)
            .all(|w| w[0].makespan <= w[1].makespan));
        assert_eq!(
            opt.report.recommended(),
            Some(opt.report.recommendation[0].config)
        );
    }

    #[test]
    fn optimized_programs_round_trip_through_text() {
        type Program = fn(&mut OmpRuntime) -> Result<(), OmpError>;
        let programs: [Program; 3] = [loop_pairs, loop_kernel_maps, dead_from_copies];
        for program in programs {
            let ir = capture_run(1, program).unwrap();
            let opt = optimize(&ir).unwrap();
            let text = opt.ir.to_text();
            let parsed = MapIr::parse(&text).expect("optimizer output parses");
            assert_eq!(parsed, opt.ir, "parse(to_text(ir)) == ir");
            assert_eq!(parsed.to_text(), text, "byte-identical re-serialization");
        }
    }
}
