//! MapIR capture: run a program against a recording runtime.

use apu_mem::CostModel;
use hsa_rocr::Topology;
use omp_offload::{MapIr, OmpError, OmpRuntime, RuntimeConfig};
use workloads::Workload;

/// Run `f` against a capture-mode runtime and return the recorded MapIR.
///
/// Capture always runs under Implicit Zero-Copy: workloads issue the same
/// directive stream regardless of configuration (that is the paper's
/// semantic-equivalence premise), and the permissive XNACK-on configuration
/// guarantees the recording pass itself never faults — so one capture can
/// be [`check`](crate::check)ed against all four configurations.
pub fn capture_run(
    threads: usize,
    f: impl FnOnce(&mut OmpRuntime) -> Result<(), OmpError>,
) -> Result<MapIr, OmpError> {
    let mut rt = OmpRuntime::builder(CostModel::mi300a_no_thp(), Topology::default())
        .config(RuntimeConfig::ImplicitZeroCopy)
        .threads(threads)
        .capture(true)
        .build()?;
    f(&mut rt)?;
    Ok(rt.take_mapir().expect("runtime was built in capture mode"))
}

/// Capture the MapIR of a [`Workload`].
pub fn capture_workload(w: &dyn Workload, threads: usize) -> Result<MapIr, OmpError> {
    capture_run(threads, |rt| w.run(rt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_of_a_shipped_workload_is_nonempty_and_round_trips() {
        let w = workloads::spec::Stencil::scaled(0.02);
        let ir = capture_workload(&w, 1).unwrap();
        assert!(ir.kernels() > 0);
        assert_eq!(MapIr::parse(&ir.to_text()).unwrap(), ir);
    }
}
