//! The static checker: abstract interpretation of a [`MapIr`] stream
//! against a symbolic mapping table.
//!
//! The interpreter replicates the runtime's mapping-table semantics —
//! presence classification, refcounting, `nowait` exit-map deferral — and
//! layers the same staleness model the runtime sanitizer uses: per-extent
//! host/device version clocks, advanced by host writes, to-transfers,
//! kernel writes, and from-transfers. Because addresses in MapIR are real
//! (capture executes the allocation calls), the symbolic table operates on
//! concrete extents and the analysis is exact for the captured program, not
//! an over-approximation.
//!
//! Diagnostics are constructed through the canonical
//! [`msg`](omp_offload::diag::msg) builders, so a hazard found here renders
//! byte-identically to the sanitizer's dynamic finding — the
//! cross-validation contract (DESIGN.md §10).

use apu_mem::{AddrRange, XnackMode};
use omp_offload::diag::msg;
use omp_offload::{
    DiagCode, Diagnostic, KernelOp, MapDir, MapEntry, MapIr, MapOp, Presence, RuntimeConfig,
};
use std::collections::{BTreeMap, BTreeSet};

/// Statically check a captured program against one runtime configuration.
///
/// Returns every diagnostic, warnings included, deduplicated on
/// `(code, extent start)`. Order follows the record stream.
pub fn check(ir: &MapIr, config: RuntimeConfig) -> Vec<Diagnostic> {
    let mut interp = Interp::new(config);
    for r in &ir.records {
        interp.step(r.thread, &r.op);
    }
    interp.finish()
}

/// One symbolic mapping-table entry.
#[derive(Debug, Clone, Copy)]
struct SymExtent {
    range: AddrRange,
    refcount: u32,
    /// Version clocks (meaningful in Copy mode only).
    host_v: u64,
    dev_v: u64,
}

struct Interp {
    config: RuntimeConfig,
    /// Symbolic mapping table keyed by extent host start, mirroring the
    /// runtime's `MappingTable`.
    table: BTreeMap<u64, SymExtent>,
    /// Live `omp_target_alloc` extents: start → len.
    pool: BTreeMap<u64, u64>,
    tick: u64,
    /// Deferred `nowait` exit maps per thread, drained at `Taskwait`.
    pending: BTreeMap<u32, Vec<MapEntry>>,
    seen: BTreeSet<(DiagCode, u64)>,
    diags: Vec<Diagnostic>,
}

impl Interp {
    fn new(config: RuntimeConfig) -> Self {
        Interp {
            config,
            table: BTreeMap::new(),
            pool: BTreeMap::new(),
            tick: 0,
            pending: BTreeMap::new(),
            seen: BTreeSet::new(),
            diags: Vec::new(),
        }
    }

    fn copy_mode(&self) -> bool {
        self.config == RuntimeConfig::LegacyCopy
    }

    fn report(&mut self, code: DiagCode, thread: u32, extent: AddrRange, detail: String) {
        if self.seen.insert((code, extent.start.as_u64())) {
            self.diags
                .push(Diagnostic::new(code, self.config, thread, extent, detail));
        }
    }

    // -- symbolic mapping table, replicating MappingTable semantics ------

    fn find(&self, range: &AddrRange) -> Option<&SymExtent> {
        self.table
            .range(..=range.start.as_u64())
            .next_back()
            .map(|(_, e)| e)
            .filter(|e| e.range.contains(range.start))
    }

    fn find_mut(&mut self, range: &AddrRange) -> Option<&mut SymExtent> {
        self.table
            .range_mut(..=range.start.as_u64())
            .next_back()
            .map(|(_, e)| e)
            .filter(|e| e.range.contains(range.start))
    }

    fn presence(&self, range: &AddrRange) -> Presence {
        if let Some(e) = self.find(range) {
            return if e.range.contains_range(range) {
                Presence::Present
            } else {
                Presence::Partial
            };
        }
        if self
            .table
            .range(range.start.as_u64()..range.end())
            .next()
            .is_some()
        {
            Presence::Partial
        } else {
            Presence::Absent
        }
    }

    fn pool_covers(&self, range: &AddrRange) -> bool {
        self.pool
            .range(..=range.start.as_u64())
            .next_back()
            .is_some_and(|(start, len)| range.end() <= start + len)
    }

    // -- directive semantics ---------------------------------------------

    fn map_enter(&mut self, thread: u32, e: &MapEntry) {
        match self.presence(&e.range) {
            Presence::Partial => {
                self.report(DiagCode::Mc006, thread, e.range, msg::double_map_mismatch());
            }
            Presence::Present => {
                if e.dir != MapDir::Alloc && !e.always {
                    self.report(
                        DiagCode::Mc007,
                        thread,
                        e.range,
                        msg::redundant_remap(e.dir),
                    );
                }
                let copy = self.copy_mode();
                if let Some(x) = self.find_mut(&e.range) {
                    x.refcount += 1;
                    if copy && e.always && e.dir.copies_to() {
                        x.dev_v = x.host_v;
                    }
                }
            }
            Presence::Absent => {
                self.tick += 1;
                let tick = self.tick;
                self.table.insert(
                    e.range.start.as_u64(),
                    SymExtent {
                        range: e.range,
                        refcount: 1,
                        host_v: tick,
                        dev_v: if e.dir.copies_to() { tick } else { 0 },
                    },
                );
            }
        }
    }

    fn map_exit(&mut self, thread: u32, e: &MapEntry, delete: bool) {
        match self.presence(&e.range) {
            Presence::Absent => {
                self.report(
                    DiagCode::Mc002,
                    thread,
                    e.range,
                    msg::release_never_mapped(),
                );
                return;
            }
            Presence::Partial => {
                self.report(DiagCode::Mc002, thread, e.range, msg::release_partial());
                return;
            }
            Presence::Present => {}
        }
        let copy = self.copy_mode();
        let key = {
            let x = self.find_mut(&e.range).expect("present extent");
            let disappearing = x.refcount == 1 || delete;
            if copy && e.dir.copies_from() && (disappearing || e.always) {
                x.host_v = x.dev_v;
            }
            if disappearing {
                Some(x.range.start.as_u64())
            } else {
                x.refcount -= 1;
                None
            }
        };
        if let Some(key) = key {
            self.table.remove(&key);
        }
    }

    fn kernel(&mut self, thread: u32, k: &KernelOp) {
        // The construct's implicit data environment enters first, exactly
        // like the runtime's begin_map loop.
        for e in &k.maps {
            self.map_enter(thread, e);
        }
        // Raw accesses need GPU translation the configuration may not have.
        if self.config.xnack() == XnackMode::Disabled {
            for r in &k.raw {
                if !self.pool_covers(r) {
                    self.report(DiagCode::Mc005, thread, *r, msg::raw_access_without_xnack());
                }
            }
        }
        if self.copy_mode() {
            // Reads observe the device copy as it stands at dispatch.
            for e in k.maps.iter().filter(|e| e.dir.copies_to()) {
                let stale = self.find(&e.range).is_some_and(|x| x.dev_v < x.host_v);
                if stale {
                    self.report(DiagCode::Mc003, thread, e.range, msg::stale_device_read());
                }
            }
            // Kernel writes advance the device clock of `from`-flavored maps.
            for e in k.maps.iter().filter(|e| e.dir.copies_from()) {
                self.tick += 1;
                let tick = self.tick;
                if let Some(x) = self.find_mut(&e.range) {
                    x.dev_v = tick;
                }
            }
        }
        if k.nowait {
            // Exit maps are deferred until the thread's taskwait.
            self.pending
                .entry(thread)
                .or_default()
                .extend(k.maps.iter().copied());
        } else {
            for e in &k.maps {
                self.map_exit(thread, e, false);
            }
        }
    }

    fn step(&mut self, thread: u32, op: &MapOp) {
        match op {
            MapOp::HostAlloc { .. } | MapOp::HostFree { .. } | MapOp::GlobalDecl { .. } => {}
            MapOp::PoolAlloc { range } => {
                self.pool.insert(range.start.as_u64(), range.len);
            }
            MapOp::PoolFree { addr } => {
                self.pool.remove(&addr.as_u64());
            }
            MapOp::HostWrite { range } => {
                if self.copy_mode() {
                    self.tick += 1;
                    let tick = self.tick;
                    for x in self.table.values_mut() {
                        if overlaps(&x.range, range) {
                            x.host_v = tick;
                        }
                    }
                }
            }
            MapOp::HostRead { range } => {
                if self.copy_mode() {
                    let stale: Vec<AddrRange> = self
                        .table
                        .values()
                        .filter(|x| overlaps(&x.range, range) && x.dev_v > x.host_v)
                        .map(|x| x.range)
                        .collect();
                    for extent in stale {
                        self.report(DiagCode::Mc004, thread, extent, msg::stale_host_read());
                    }
                }
            }
            MapOp::MapEnter { entry } => self.map_enter(thread, entry),
            MapOp::MapExit { entry, delete } => self.map_exit(thread, entry, *delete),
            MapOp::Update { to, from } => {
                if self.copy_mode() {
                    for range in to.iter().chain(from.iter()) {
                        if self.presence(range) != Presence::Present {
                            self.report(DiagCode::Mc002, thread, *range, msg::update_not_mapped());
                        }
                    }
                    for range in to {
                        if self.presence(range) == Presence::Present {
                            if let Some(x) = self.find_mut(range) {
                                x.dev_v = x.host_v;
                            }
                        }
                    }
                    for range in from {
                        if self.presence(range) == Presence::Present {
                            if let Some(x) = self.find_mut(range) {
                                x.host_v = x.dev_v;
                            }
                        }
                    }
                }
            }
            MapOp::Kernel(k) => self.kernel(thread, k),
            MapOp::Taskwait => {
                for e in self.pending.remove(&thread).unwrap_or_default() {
                    self.map_exit(thread, &e, false);
                }
            }
        }
    }

    fn finish(mut self) -> Vec<Diagnostic> {
        // Exit maps still deferred at program end never ran: their extents
        // stay live and surface below as MC001, matching the sanitizer's
        // view of the real table.
        let leaked: Vec<(AddrRange, u32)> =
            self.table.values().map(|x| (x.range, x.refcount)).collect();
        for (extent, refcount) in leaked {
            self.report(DiagCode::Mc001, 0, extent, msg::leaked(refcount));
        }
        self.diags
    }
}

fn overlaps(a: &AddrRange, b: &AddrRange) -> bool {
    a.start.as_u64() < b.end() && b.start.as_u64() < a.end()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_mem::VirtAddr;

    fn r(start: u64, len: u64) -> AddrRange {
        AddrRange::new(VirtAddr(start), len)
    }

    fn ir(ops: Vec<(u32, MapOp)>) -> MapIr {
        let mut ir = MapIr::new();
        for (t, op) in ops {
            ir.push(t, op);
        }
        ir
    }

    fn kernel(maps: Vec<MapEntry>, raw: Vec<AddrRange>, nowait: bool) -> MapOp {
        MapOp::Kernel(KernelOp {
            name: "k".to_string(),
            maps,
            raw,
            globals: vec![],
            nowait,
        })
    }

    #[test]
    fn balanced_program_is_clean_in_every_config() {
        let buf = r(4096, 8192);
        let program = ir(vec![
            (0, MapOp::HostWrite { range: buf }),
            (
                0,
                MapOp::MapEnter {
                    entry: MapEntry::to(buf),
                },
            ),
            (0, kernel(vec![MapEntry::alloc(buf)], vec![], false)),
            (
                0,
                MapOp::MapExit {
                    entry: MapEntry::from(buf),
                    delete: false,
                },
            ),
            (0, MapOp::HostRead { range: buf }),
        ]);
        for config in RuntimeConfig::ALL {
            assert!(
                check(&program, config).is_empty(),
                "{config:?}: {:?}",
                check(&program, config)
            );
        }
    }

    #[test]
    fn leak_reports_mc001_with_refcount() {
        let buf = r(4096, 64);
        let program = ir(vec![
            (
                0,
                MapOp::MapEnter {
                    entry: MapEntry::to(buf),
                },
            ),
            (
                0,
                MapOp::MapEnter {
                    entry: MapEntry::alloc(buf),
                },
            ),
        ]);
        let diags = check(&program, RuntimeConfig::LegacyCopy);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Mc001);
        assert!(diags[0].detail.contains("refcount still 2"));
    }

    #[test]
    fn nowait_without_taskwait_leaks_and_taskwait_drains() {
        let buf = r(4096, 64);
        let launch = |tail: Vec<(u32, MapOp)>| {
            let mut ops = vec![
                (0, MapOp::HostWrite { range: buf }),
                (0, kernel(vec![MapEntry::tofrom(buf)], vec![], true)),
            ];
            ops.extend(tail);
            ir(ops)
        };
        let no_wait = check(&launch(vec![]), RuntimeConfig::ImplicitZeroCopy);
        assert_eq!(no_wait.len(), 1);
        assert_eq!(no_wait[0].code, DiagCode::Mc001);
        let waited = check(
            &launch(vec![(0, MapOp::Taskwait)]),
            RuntimeConfig::ImplicitZeroCopy,
        );
        assert!(waited.is_empty(), "{waited:?}");
    }

    #[test]
    fn partial_overlap_reports_mc006_and_release_mismatch_mc002() {
        let program = ir(vec![
            (
                0,
                MapOp::MapEnter {
                    entry: MapEntry::to(r(4096, 4096)),
                },
            ),
            (
                0,
                MapOp::MapEnter {
                    entry: MapEntry::to(r(6144, 4096)),
                },
            ),
            (
                0,
                MapOp::MapExit {
                    entry: MapEntry::alloc(r(1 << 20, 64)),
                    delete: false,
                },
            ),
        ]);
        let codes: Vec<_> = check(&program, RuntimeConfig::UnifiedSharedMemory)
            .iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, [DiagCode::Mc006, DiagCode::Mc002, DiagCode::Mc001]);
    }

    #[test]
    fn copy_only_update_of_unmapped_data_is_mc002() {
        let program = ir(vec![(
            0,
            MapOp::Update {
                to: vec![r(4096, 64)],
                from: vec![],
            },
        )]);
        assert_eq!(
            check(&program, RuntimeConfig::LegacyCopy)[0].detail,
            msg::update_not_mapped()
        );
        assert!(check(&program, RuntimeConfig::EagerMaps).is_empty());
    }

    #[test]
    fn usm_raw_access_flags_mc005_under_xnack_off_only() {
        let raw = r(1 << 20, 4096);
        let program = ir(vec![(0, kernel(vec![], vec![raw], false))]);
        for config in RuntimeConfig::ALL {
            let diags = check(&program, config);
            if config.xnack() == XnackMode::Disabled {
                assert_eq!(diags.len(), 1, "{config:?}");
                assert_eq!(diags[0].code, DiagCode::Mc005);
            } else {
                assert!(diags.is_empty(), "{config:?}");
            }
        }
        // Pool-backed raw accesses are exempt.
        let backed = ir(vec![
            (
                0,
                MapOp::PoolAlloc {
                    range: r(1 << 20, 1 << 16),
                },
            ),
            (0, kernel(vec![], vec![raw], false)),
            (
                0,
                MapOp::PoolFree {
                    addr: VirtAddr(1 << 20),
                },
            ),
        ]);
        assert!(check(&backed, RuntimeConfig::LegacyCopy).is_empty());
    }

    #[test]
    fn stale_read_mc003_only_in_copy_mode_and_always_fixes_it() {
        let buf = r(4096, 8192);
        let hazard = |always: bool| {
            let m = if always {
                MapEntry::to(buf).always()
            } else {
                MapEntry::to(buf)
            };
            ir(vec![
                (0, MapOp::HostWrite { range: buf }),
                (
                    0,
                    MapOp::MapEnter {
                        entry: MapEntry::to(buf),
                    },
                ),
                (0, MapOp::HostWrite { range: buf }),
                (0, kernel(vec![m], vec![], false)),
                (
                    0,
                    MapOp::MapExit {
                        entry: MapEntry::alloc(buf),
                        delete: false,
                    },
                ),
            ])
        };
        let diags = check(&hazard(false), RuntimeConfig::LegacyCopy);
        assert!(diags.iter().any(|d| d.code == DiagCode::Mc003), "{diags:?}");
        let fixed = check(&hazard(true), RuntimeConfig::LegacyCopy);
        assert!(
            !fixed.iter().any(|d| d.code == DiagCode::Mc003),
            "{fixed:?}"
        );
        // Zero-copy configurations share storage: no staleness.
        assert!(check(&hazard(false), RuntimeConfig::ImplicitZeroCopy)
            .iter()
            .all(|d| d.code != DiagCode::Mc003));
    }
}
