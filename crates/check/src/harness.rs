//! The mapcheck harness: capture → static check × configurations, with a
//! sanitized real run cross-validating every cell.
//!
//! This is the engine behind `repro --check` and `apusim check`. Exit-code
//! convention (enforced by the binaries): 0 clean, 1 diagnostics found or
//! cross-validation mismatch, 2 usage error.

use crate::{capture_workload, check, optimize, verify_equivalence};
use apu_mem::CostModel;
use hsa_rocr::Topology;
use omp_offload::metrics::derivable_snapshot;
use omp_offload::{
    DiagCode, Diagnostic, ElideMode, MetricClass, MetricsMode, OmpError, OmpRuntime,
    OverheadLedger, RuntimeConfig, Severity, TelemetryMode,
};
use sim_des::VirtDuration;
use workloads::{spec, MiniCg, NioSize, OpenFoamMini, QmcPack, Stream, Workload};

/// The result of checking one (workload, configuration) cell.
#[derive(Debug)]
pub struct CheckCell {
    /// Workload name.
    pub workload: String,
    /// Configuration the cell was checked under.
    pub config: RuntimeConfig,
    /// Static-checker diagnostics (abstract interpretation of the capture).
    pub diagnostics: Vec<Diagnostic>,
    /// Runtime-sanitizer diagnostics from a real run.
    pub sanitizer_diagnostics: Vec<Diagnostic>,
    /// True when both passes found the same multiset of codes — the
    /// cross-validation contract.
    pub cross_validated: bool,
    /// Maps the online elision pass promoted in the elided verification run.
    pub maps_elided: u64,
    /// Map-service time the elided run recovered.
    pub mm_saved: VirtDuration,
    /// The elision contract held for this cell: the elided run is
    /// diagnostic-clean, bit-identical to the unelided run, its operation
    /// counters match, and `mm_total(unelided) − mm_total(elided)` equals
    /// the reported saving exactly.
    pub elision_verified: bool,
    /// The telemetry derivability contract held for this cell: in both the
    /// unelided and the elided run, the fold of the event stream equals the
    /// ledger field for field and the ring dropped nothing.
    pub telemetry_exact: bool,
    /// The metrics derivability contract held for this cell: in both runs,
    /// the derivable-class families of the runtime's metrics snapshot equal
    /// [`derivable_snapshot`] applied to the telemetry *fold* — i.e. every
    /// derivable metric is a pure function of the simulated run, family for
    /// family and sample for sample.
    pub metrics_exact: bool,
    /// The static-optimizer equivalence contract held for this cell: the
    /// [`optimize`]d capture replays with a bit-identical memory digest, an
    /// error-free sanitizer, the same kernel count, and never more
    /// map-management time than the baseline replay.
    pub opt_verified: bool,
    /// Map-management time the optimized replay recovered over the baseline
    /// replay (`mm_total(baseline) − mm_total(optimized)`).
    pub opt_mm_saved: VirtDuration,
}

impl CheckCell {
    /// True when the static pass found an error-severity diagnostic.
    pub fn has_static_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
    }
}

/// The workloads `repro --check` covers: every shipped program at the
/// scales the test suites use.
pub fn shipped_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(QmcPack::nio(NioSize { factor: 2 }).with_steps(3)),
        Box::new(
            QmcPack::nio(NioSize { factor: 2 })
                .with_steps(3)
                .with_nowait(),
        ),
        Box::new(spec::Stencil::scaled(0.02)),
        Box::new(spec::Lbm::scaled(0.02)),
        Box::new(spec::Ep::scaled(0.05)),
        Box::new(spec::SpC::scaled(0.05)),
        Box::new(spec::Bt::scaled(0.08)),
        Box::new(Stream::scaled(0.05)),
        Box::new(OpenFoamMini::scaled(0.02)),
        Box::new(MiniCg::scaled(0.05)),
        Box::new(MiniCg::scaled(0.05).with_nowait()),
    ]
}

/// Configurations a workload is expected to run under: everything, unless
/// the program needs `unified_shared_memory` semantics (then only the
/// XNACK-enabled pair — elsewhere it fatal-faults, which MC005 reports when
/// the static pass *is* run against those configurations).
pub fn configs_for(w: &dyn Workload) -> Vec<RuntimeConfig> {
    if w.requires_usm() {
        vec![
            RuntimeConfig::UnifiedSharedMemory,
            RuntimeConfig::ImplicitZeroCopy,
        ]
    } else {
        RuntimeConfig::ALL.to_vec()
    }
}

fn sorted_codes(diags: &[Diagnostic]) -> Vec<DiagCode> {
    let mut v: Vec<DiagCode> = diags.iter().map(|d| d.code).collect();
    v.sort();
    v
}

/// What one instrumented run yields for contract checking.
struct RunProbe {
    diags: Vec<Diagnostic>,
    digest: u64,
    ledger: OverheadLedger,
    telemetry_exact: bool,
    metrics_exact: bool,
}

/// One instrumented run: sanitized, telemetry ring on, metrics armed,
/// under `config`, with the given elision mode. Returns the sanitizer's
/// findings, the memory digest (taken after the program body, before
/// teardown), the ledger, and whether the telemetry-fold and
/// metrics-derivability contracts held.
fn instrumented_run(
    w: &dyn Workload,
    threads: usize,
    config: RuntimeConfig,
    elide: ElideMode,
) -> Result<RunProbe, OmpError> {
    let mut rt = OmpRuntime::builder(CostModel::mi300a_no_thp(), Topology::default())
        .config(config)
        .threads(threads)
        .sanitize(true)
        .elide(elide)
        .telemetry(TelemetryMode::ring())
        .metrics(MetricsMode::On)
        .build()?;
    // A run may abort on a fatal hazard; the sanitizer's findings up to
    // the abort are exactly what the static pass predicted.
    let _ = w.run(&mut rt);
    let digest = rt.memory_digest();
    let diags = rt.sanitizer_finalize().to_vec();
    let ledger = *rt.ledger();
    let fold = rt.telemetry_fold();
    let telemetry_exact = fold == Some(ledger) && rt.telemetry_dropped() == 0;
    // Every derivable metric family must be reconstructible from the
    // telemetry fold alone; the schedule-class families (armed above) may
    // say anything and must be confined to their own class.
    let (hits, misses) = rt.mapping_cache_stats();
    let metrics_exact = fold.as_ref().is_some_and(|f| {
        rt.metrics_snapshot().class_only(MetricClass::Derivable)
            == derivable_snapshot(f, hits, misses, rt.mapping_cache_invalidations())
    });
    Ok(RunProbe {
        diags,
        digest,
        ledger,
        telemetry_exact,
        metrics_exact,
    })
}

/// The elision contract for one cell: the elided run found no hazards, its
/// memory is bit-identical to the unelided run's, its operation counters
/// match, and the accounting identity `mm_total(off) − mm_total(elided) ==
/// mm_saved` holds exactly.
fn elision_holds(off: &RunProbe, on: &RunProbe) -> bool {
    let (l0, l1) = (&off.ledger, &on.ledger);
    on.diags.is_empty()
        && off.digest == on.digest
        && (l0.copies, l0.bytes_copied, l0.kernels, l0.maps)
            == (l1.copies, l1.bytes_copied, l1.kernels, l1.maps)
        && l0.prefault_calls == l1.prefault_calls
        && l0.mm_total().saturating_sub(l1.mm_total()) == l1.mm_saved
        && l1.mm_total() <= l0.mm_total()
}

/// Check one workload: capture its MapIR once, statically check it against
/// each compatible configuration, and cross-validate every cell with a
/// sanitized real run. Each cell also runs a second time with online map
/// elision and verifies the elision contract ([`CheckCell::elision_verified`]),
/// and replays the statically [`optimize`]d capture to verify the optimizer's
/// equivalence contract ([`CheckCell::opt_verified`]).
pub fn check_workload(w: &dyn Workload) -> Result<Vec<CheckCell>, OmpError> {
    let threads = if w.name().contains("qmc") { 2 } else { 1 };
    let ir = capture_workload(w, threads)?;
    // Optimize the capture once; each cell then verifies the equivalence
    // contract under its own configuration. A refused (ill-formed) capture
    // fails every cell's contract — shipped workloads are well-formed.
    let optimized = optimize(&ir).ok();
    let mut cells = Vec::new();
    for config in configs_for(w) {
        let diagnostics = check(&ir, config);
        let off = instrumented_run(w, threads, config, ElideMode::Off)?;
        let on = instrumented_run(w, threads, config, ElideMode::Online)?;
        let cross_validated = sorted_codes(&diagnostics) == sorted_codes(&off.diags);
        let elision_verified = elision_holds(&off, &on);
        let telemetry_exact = off.telemetry_exact && on.telemetry_exact;
        let metrics_exact = off.metrics_exact && on.metrics_exact;
        let (opt_verified, opt_mm_saved) = match &optimized {
            Some(o) => {
                let eq = verify_equivalence(&ir, &o.ir, config)?;
                (eq.holds(), eq.mm_saved())
            }
            None => (false, VirtDuration::ZERO),
        };
        cells.push(CheckCell {
            workload: w.name(),
            config,
            diagnostics,
            sanitizer_diagnostics: off.diags,
            cross_validated,
            maps_elided: on.ledger.maps_elided,
            mm_saved: on.ledger.mm_saved,
            elision_verified,
            telemetry_exact,
            metrics_exact,
            opt_verified,
            opt_mm_saved,
        });
    }
    Ok(cells)
}

/// Check every shipped workload. `filter` restricts by case-insensitive
/// name substring.
pub fn check_all(filter: Option<&str>) -> Result<Vec<CheckCell>, OmpError> {
    let mut cells = Vec::new();
    for w in shipped_workloads() {
        if let Some(f) = filter {
            if !w.name().to_lowercase().contains(&f.to_lowercase()) {
                continue;
            }
        }
        cells.extend(check_workload(w.as_ref())?);
    }
    Ok(cells)
}

/// True when any cell fails the acceptance bar: an error-severity static
/// diagnostic, a static/dynamic verdict mismatch, a broken elision or
/// optimizer-equivalence contract, or a telemetry stream whose fold
/// diverged from the ledger.
pub fn has_errors(cells: &[CheckCell]) -> bool {
    cells.iter().any(|c| {
        c.has_static_errors()
            || !c.cross_validated
            || !c.elision_verified
            || !c.telemetry_exact
            || !c.metrics_exact
            || !c.opt_verified
    })
}

/// Human-readable report.
pub fn render_text(cells: &[CheckCell]) -> String {
    let mut out = String::new();
    out.push_str(
        "mapcheck: static map-clause analysis, cross-validated by the runtime sanitizer\n\n",
    );
    let mut current = String::new();
    for c in cells {
        if c.workload != current {
            current = c.workload.clone();
            out.push_str(&format!("{current}\n"));
        }
        let verdict = if !c.cross_validated {
            "CROSS-VALIDATION MISMATCH"
        } else if !c.elision_verified {
            "ELISION CONTRACT BROKEN"
        } else if !c.opt_verified {
            "OPTIMIZER CONTRACT BROKEN"
        } else if !c.telemetry_exact {
            "TELEMETRY FOLD DIVERGED"
        } else if !c.metrics_exact {
            "METRICS CONTRACT BROKEN"
        } else if c.has_static_errors() {
            "FAIL"
        } else if c.diagnostics.is_empty() {
            "clean"
        } else {
            "warnings"
        };
        let elided = if c.maps_elided != 0 {
            format!(", {} elided saving {}", c.maps_elided, c.mm_saved)
        } else {
            String::new()
        };
        let opt = if c.opt_mm_saved != VirtDuration::ZERO {
            format!(", opt saves {}", c.opt_mm_saved)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "  [{:>11}] {} ({} static, {} sanitizer{}{})\n",
            c.config.label(),
            verdict,
            c.diagnostics.len(),
            c.sanitizer_diagnostics.len(),
            elided,
            opt
        ));
        for d in &c.diagnostics {
            out.push_str(&format!("    {d}\n"));
        }
        if !c.cross_validated {
            for d in &c.sanitizer_diagnostics {
                out.push_str(&format!("    sanitizer: {d}\n"));
            }
        }
    }
    let (bad, total) = (
        cells
            .iter()
            .filter(|c| c.has_static_errors() || !c.cross_validated)
            .count(),
        cells.len(),
    );
    out.push_str(&format!(
        "\n{} cell(s) checked, {} failing, {} warning(s)\n",
        total,
        bad,
        cells
            .iter()
            .flat_map(|c| &c.diagnostics)
            .filter(|d| d.severity() == Severity::Warning)
            .count()
    ));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_diag(d: &Diagnostic) -> String {
    format!(
        "{{\"code\":\"{}\",\"severity\":\"{}\",\"thread\":{},\"extent_start\":{},\"extent_len\":{},\"detail\":\"{}\"}}",
        d.code,
        d.severity(),
        d.thread,
        d.extent.start.as_u64(),
        d.extent.len,
        json_escape(&d.detail)
    )
}

/// Machine-readable report (`repro --check --json`).
pub fn render_json(cells: &[CheckCell]) -> String {
    let mut out = String::from("{\"cells\":[");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"workload\":\"{}\",\"config\":\"{}\",\"cross_validated\":{},\
             \"elision_verified\":{},\"telemetry_exact\":{},\"metrics_exact\":{},\
             \"maps_elided\":{},\
             \"mm_saved_us\":{:.3},\"opt_verified\":{},\"opt_mm_saved_us\":{:.3},\
             \"static\":[",
            json_escape(&c.workload),
            c.config.label(),
            c.cross_validated,
            c.elision_verified,
            c.telemetry_exact,
            c.metrics_exact,
            c.maps_elided,
            c.mm_saved.as_micros_f64(),
            c.opt_verified,
            c.opt_mm_saved.as_micros_f64()
        ));
        out.push_str(
            &c.diagnostics
                .iter()
                .map(json_diag)
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("],\"sanitizer\":[");
        out.push_str(
            &c.sanitizer_diagnostics
                .iter()
                .map(json_diag)
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("]}");
    }
    out.push_str(&format!("],\"errors\":{}}}", has_errors(cells)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn one_cheap_cell_checks_clean_end_to_end() {
        let w = spec::Ep::scaled(0.02);
        let cells = check_workload(&w).unwrap();
        assert_eq!(cells.len(), 4);
        for c in &cells {
            assert!(c.cross_validated, "{:?}", c);
            assert!(c.diagnostics.is_empty(), "{:?}", c.diagnostics);
            assert!(c.elision_verified, "{:?}", c);
            assert!(c.telemetry_exact, "{:?}", c);
            assert!(c.metrics_exact, "{:?}", c);
            assert!(c.opt_verified, "{:?}", c);
        }
        assert!(!has_errors(&cells));
        let json = render_json(&cells);
        assert!(json.contains("\"errors\":false"), "{json}");
    }
}
