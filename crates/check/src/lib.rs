//! # omp-mapcheck — static map-clause & data-environment analyzer
//!
//! The paper's central premise is that the four runtime configurations
//! (Copy / USM / Implicit Zero-Copy / Eager Maps) are semantically
//! equivalent implementations of the OpenMP data-environment model — but
//! that equivalence only holds for *well-formed* programs: balanced
//! enter/exit refcounts, no stale-copy reads in Copy mode, no raw
//! `unified_shared_memory`-style accesses under XNACK-off configurations.
//! This crate makes those properties checkable without running a workload
//! to a fatal fault or a silently-stale value:
//!
//! 1. [`capture_workload`] runs a workload against a *recording* runtime
//!    (`RuntimeBuilder::capture`): the data-environment op stream is
//!    captured as a [`MapIr`](omp_offload::MapIr) without executing maps,
//!    transfers, or kernels.
//! 2. [`check`] abstractly interprets that stream against a symbolic
//!    mapping table — per-extent refcounts plus host/device version
//!    clocks — once per configuration, emitting structured
//!    [`Diagnostic`](omp_offload::Diagnostic)s with stable `MC00x` codes.
//! 3. The same invariants are checked dynamically by the runtime sanitizer
//!    (`RuntimeBuilder::sanitize`); [`harness`] cross-validates the two
//!    verdicts for every shipped workload, and [`corpus`] holds the golden
//!    ill-formed programs that each trip one specific code in both passes.
//! 4. [`optimize`] upgrades the checker into a whole-program optimizing
//!    pass: liveness and reaching-transfer dataflow over the capture drives
//!    four rewrite rules (loop hoisting, dead to/from transfer deletion,
//!    update downgrade), and the rewritten program is verified equivalent
//!    on replay — bit-identical memory digest, error-free sanitizer,
//!    identical kernel count, never more map-management time ([`opt`]).
//!
//! | Code | Severity | Meaning |
//! |---|---|---|
//! | MC001 | error | refcount imbalance: mapping leaked at program end |
//! | MC002 | error | release/update of never-mapped or partially-overlapping extent |
//! | MC003 | error | stale device read in Copy mode (host wrote after last to-transfer) |
//! | MC004 | error | stale host read of device-written data without `from` |
//! | MC005 | error | raw USM access under a non-XNACK configuration (fatal fault, paper §IV-B) |
//! | MC006 | error | overlapping double-map with mismatched extents |
//! | MC007 | warning | redundant re-map of a present extent — zero-copy promotion candidate |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capture;
mod checker;
pub mod corpus;
mod elision;
pub mod harness;
pub mod opt;

pub use capture::{capture_run, capture_workload};
pub use checker::check;
pub use elision::elision_plan;
pub use harness::{check_all, check_workload, has_errors, render_json, render_text, CheckCell};
pub use opt::{
    admissible_configs, optimize, replay_probe, verify_equivalence, ConfigScore, Equivalence,
    OptError, OptReport, Optimized, ReplayProbe,
};
