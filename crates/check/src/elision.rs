//! Profile-guided elision: derive an [`ElisionPlan`] from a capture.
//!
//! The planner walks the [`MapIr`] stream with a symbolic refcount table
//! (the presence half of the [`check`](crate::check) interpreter) and marks
//! every map site the runtime's online elision would promote: a re-map of an
//! already-present extent carrying a transfer direction and no `always`
//! modifier — the MC007 pattern. Under the refcount model such a map's
//! transfers can never be observed (see DESIGN.md §11), so it can be
//! rewritten to `alloc` on replay.
//!
//! Eligibility is evaluated against the table state *before the construct
//! begins any of its own maps* — the same pre-construct rule the runtime
//! applies. Eliding against mid-construct state would be unsound: the
//! second `tofrom` map of an extent the *same* construct just made present
//! carries that extent's final `from` copy, and promoting it to `alloc`
//! would lose the copy-back. A pre-construct-present extent, by contrast,
//! has an enclosing reference that outlives the construct, so the construct
//! can neither trigger its first `to` copy nor its last `from` copy.
//!
//! Sites are addressed as `(op_index, map_index)`: the operation's position
//! in the capture stream (which the runtime's op counter reproduces on
//! replay) and the map's position in the construct's clause list
//! (`MapEnter` sites use map index 0).

use apu_mem::AddrRange;
use omp_offload::{ElisionPlan, MapDir, MapEntry, MapIr, MapOp};
use std::collections::BTreeMap;

/// Compute the elision plan for a captured program.
///
/// The plan is deterministic in the capture: replaying `ir` under
/// [`ElideMode::Plan`](omp_offload::ElideMode) applies exactly these sites,
/// and the planner's eligibility rule matches the runtime's online mode, so
/// plan-mode replay elides the same maps an online run of the same program
/// would.
pub fn elision_plan(ir: &MapIr) -> ElisionPlan {
    // Empty and zero-map (kernels-only) captures have no sites by
    // construction: return the empty plan without touching the table.
    let has_map_sites = ir.records.iter().any(|r| match &r.op {
        MapOp::MapEnter { .. } | MapOp::MapExit { .. } => true,
        MapOp::Kernel(k) => !k.maps.is_empty(),
        _ => false,
    });
    if !has_map_sites {
        return ElisionPlan::new();
    }
    let mut p = Planner::default();
    for (idx, rec) in ir.records.iter().enumerate() {
        p.step(idx as u64, rec.thread, &rec.op);
    }
    p.plan
}

/// Symbolic refcount table: extent start → (extent, refcount), plus the
/// per-thread deferred `nowait` exit maps.
#[derive(Default)]
struct Planner {
    table: BTreeMap<u64, (AddrRange, u32)>,
    pending: BTreeMap<u32, Vec<MapEntry>>,
    plan: ElisionPlan,
}

impl Planner {
    /// Full containment by a live extent — the runtime's
    /// `Presence::Present`. Partial overlaps are never eligible.
    fn present(&self, r: &AddrRange) -> bool {
        self.table
            .range(..=r.start.as_u64())
            .next_back()
            .is_some_and(|(_, (e, _))| e.contains(r.start) && e.contains_range(r))
    }

    fn eligible(&self, e: &MapEntry) -> bool {
        e.dir != MapDir::Alloc && !e.always && self.present(&e.range)
    }

    fn enter(&mut self, e: &MapEntry) {
        if self.present(&e.range) {
            if let Some((_, rc)) = self
                .table
                .range_mut(..=e.range.start.as_u64())
                .next_back()
                .map(|(_, v)| v)
            {
                *rc += 1;
            }
        } else if self
            .table
            .range(e.range.start.as_u64()..e.range.end())
            .next()
            .is_none()
            && self
                .table
                .range(..=e.range.start.as_u64())
                .next_back()
                .is_none_or(|(_, (r, _))| !r.contains(e.range.start))
        {
            self.table.insert(e.range.start.as_u64(), (e.range, 1));
        }
        // Partial overlaps abort the real run (PartialOverlap); nothing
        // useful to model past this point.
    }

    fn exit(&mut self, e: &MapEntry, delete: bool) {
        let Some(key) = self
            .table
            .range(..=e.range.start.as_u64())
            .next_back()
            .filter(|(_, (r, _))| r.contains(e.range.start) && r.contains_range(&e.range))
            .map(|(k, _)| *k)
        else {
            return;
        };
        let (_, rc) = self.table.get_mut(&key).expect("present extent");
        if *rc == 1 || delete {
            self.table.remove(&key);
        } else {
            *rc -= 1;
        }
    }

    fn step(&mut self, idx: u64, thread: u32, op: &MapOp) {
        match op {
            MapOp::MapEnter { entry } => {
                if self.eligible(entry) {
                    self.plan.insert(idx, 0);
                }
                self.enter(entry);
            }
            MapOp::MapExit { entry, delete } => self.exit(entry, *delete),
            MapOp::Kernel(k) => {
                // Pre-pass: every map's eligibility is judged against the
                // pre-construct table, before any of this construct's own
                // enters take effect.
                let eligible: Vec<bool> = k.maps.iter().map(|e| self.eligible(e)).collect();
                for (i, yes) in eligible.iter().enumerate() {
                    if *yes {
                        self.plan.insert(idx, i as u32);
                    }
                }
                for e in &k.maps {
                    self.enter(e);
                }
                if k.nowait {
                    self.pending
                        .entry(thread)
                        .or_default()
                        .extend(k.maps.iter().copied());
                } else {
                    for e in &k.maps {
                        self.exit(e, false);
                    }
                }
            }
            MapOp::Taskwait => {
                for e in self.pending.remove(&thread).unwrap_or_default() {
                    self.exit(&e, false);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_mem::VirtAddr;
    use omp_offload::KernelOp;

    fn r(start: u64, len: u64) -> AddrRange {
        AddrRange::new(VirtAddr(start), len)
    }

    fn kernel(maps: Vec<MapEntry>, nowait: bool) -> MapOp {
        MapOp::Kernel(KernelOp {
            name: "k".to_string(),
            maps,
            raw: vec![],
            globals: vec![],
            nowait,
        })
    }

    #[test]
    fn plans_remaps_of_present_extents_only() {
        let buf = r(4096, 8192);
        let mut ir = MapIr::new();
        ir.push(
            0,
            MapOp::MapEnter {
                entry: MapEntry::tofrom(buf),
            },
        ); // op 0: absent — not planned
        ir.push(0, kernel(vec![MapEntry::tofrom(buf)], false)); // op 1 map 0: planned
        ir.push(0, kernel(vec![MapEntry::tofrom(buf).always()], false)); // always — never
        ir.push(0, kernel(vec![MapEntry::alloc(buf)], false)); // alloc — never
        ir.push(
            0,
            MapOp::MapExit {
                entry: MapEntry::from(buf),
                delete: false,
            },
        );
        let plan = elision_plan(&ir);
        assert!(plan.contains(1, 0));
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn same_construct_double_map_is_not_planned() {
        // The second tofrom of an extent made present by the *same*
        // construct carries the final from-copy — pre-construct evaluation
        // must leave both maps alone.
        let buf = r(4096, 4096);
        let mut ir = MapIr::new();
        ir.push(
            0,
            kernel(vec![MapEntry::tofrom(buf), MapEntry::tofrom(buf)], false),
        );
        assert!(elision_plan(&ir).is_empty());
    }

    #[test]
    fn empty_capture_yields_an_empty_plan() {
        assert!(elision_plan(&MapIr::new()).is_empty());
    }

    #[test]
    fn zero_map_kernels_only_capture_yields_an_empty_plan() {
        let mut ir = MapIr::new();
        ir.push(0, MapOp::HostAlloc { range: r(4096, 64) });
        ir.push(0, kernel(vec![], false));
        ir.push(0, kernel(vec![], true));
        ir.push(0, MapOp::Taskwait);
        ir.push(
            0,
            MapOp::HostFree {
                addr: VirtAddr(4096),
            },
        );
        assert!(elision_plan(&ir).is_empty());
    }

    #[test]
    fn nowait_deferred_exits_keep_refcounts_exact() {
        let buf = r(4096, 4096);
        let mut ir = MapIr::new();
        ir.push(0, kernel(vec![MapEntry::tofrom(buf)], true)); // op 0: absent
        ir.push(0, kernel(vec![MapEntry::tofrom(buf)], true)); // op 1: present — planned
        ir.push(0, MapOp::Taskwait); // drains both exits
        ir.push(0, kernel(vec![MapEntry::tofrom(buf)], false)); // op 3: absent again
        let plan = elision_plan(&ir);
        assert!(plan.contains(1, 0));
        assert_eq!(plan.len(), 1);
    }
}
