//! Property: the static mapping optimizer is semantics-preserving on
//! randomized redundantly-mapping programs — the equivalence contract,
//! executed.
//!
//! The driver is the redundant-remap state machine from `elision_prop`
//! preceded by a deterministic per-iteration map loop (the hoist rule's
//! target shape: the same enter/kernel/exit window repeated back to back).
//! For every generated program:
//!
//! * [`optimize`] accepts it — these programs are well-formed, merely
//!   wasteful (nothing worse than MC007 redundancy warnings);
//! * under EVERY admissible configuration, [`verify_equivalence`] holds:
//!   bit-identical memory digest, identical kernel count, a clean sanitized
//!   replay of the rewrite, no new static diagnostic codes, and
//!   `mm_total(optimized) ≤ mm_total(baseline)`;
//! * the optimized program survives a text-format round-trip unchanged;
//! * with ≥2 loop iterations the hoist rule provably fires.

use apu_mem::AddrRange;
use omp_mapcheck::{admissible_configs, capture_run, optimize, verify_equivalence};
use omp_offload::{MapDir, MapEntry, MapIr, OmpError, OmpRuntime, TargetRegion};
use proptest::prelude::*;
use sim_des::VirtDuration;

const NBUF: usize = 4;
const BUF: u64 = 8192;

fn kernel(name: &'static str) -> TargetRegion<'static> {
    TargetRegion::new(name, VirtDuration::from_micros(3))
}

/// Interpret the opcode trace as a well-formed-but-redundantly-mapping
/// program against `rt`, preceded by `iters` passes of an identical
/// per-iteration map loop over the first buffer.
fn drive(rt: &mut OmpRuntime, ops: &[(u8, u8, u8)], iters: usize) -> Result<(), OmpError> {
    let t = 0usize;
    let mut bufs = Vec::with_capacity(NBUF);
    for _ in 0..NBUF {
        let a = rt.host_alloc(t, BUF)?;
        let r = AddrRange::new(a, BUF);
        rt.host_write(t, r)?;
        bufs.push(r);
    }

    // The hoist rule's target shape: every iteration brackets the same
    // kernel with a structurally identical map pair, and the host never
    // touches the extent in between.
    for _ in 0..iters {
        rt.target_enter_data(t, &[MapEntry::to(bufs[0])])?;
        rt.target(t, kernel("loop-kernel").map(MapEntry::alloc(bufs[0])))?;
        rt.target_exit_data(t, &[MapEntry::from(bufs[0])], false)?;
    }

    // Per-buffer stack of enter directions (refcount model) and whether a
    // nowait kernel's deferred exit is still in flight. The first map of a
    // buffer always carries a transfer direction, so the stack-bottom exit
    // is a `from` that syncs the host copy.
    let mut stacks: Vec<Vec<MapDir>> = vec![Vec::new(); NBUF];
    let mut pending = [false; NBUF];

    for &(op, buf, aux) in ops {
        let b = buf as usize % NBUF;
        let r = bufs[b];
        let closed = stacks[b].is_empty() && !pending[b];
        match op % 6 {
            0 if closed => rt.host_write(t, r)?,
            1 if closed => rt.host_read(t, r),
            2 => {
                let dir = if closed {
                    if aux & 1 == 1 {
                        MapDir::To
                    } else {
                        MapDir::ToFrom
                    }
                } else {
                    // Re-map of a present extent: transfer directions here
                    // are the MC007 sites the optimizer's planned-elision
                    // rule deletes.
                    match aux % 3 {
                        0 => MapDir::To,
                        1 => MapDir::ToFrom,
                        _ => MapDir::Alloc,
                    }
                };
                let entry = match dir {
                    MapDir::To => MapEntry::to(r),
                    MapDir::ToFrom => MapEntry::tofrom(r),
                    _ => MapEntry::alloc(r),
                };
                rt.target_enter_data(t, &[entry])?;
                stacks[b].push(dir);
            }
            3 if !stacks[b].is_empty() && !pending[b] => {
                let entry = match stacks[b].pop().unwrap() {
                    MapDir::Alloc => MapEntry::alloc(r),
                    _ => MapEntry::from(r),
                };
                rt.target_exit_data(t, &[entry], false)?;
            }
            4 => {
                if closed {
                    let region = kernel("prop-kernel").map(MapEntry::tofrom(r));
                    if aux & 1 == 1 {
                        rt.target_nowait(t, region)?;
                        pending[b] = true;
                    } else {
                        rt.target(t, region)?;
                    }
                } else {
                    let entry = match aux % 3 {
                        0 => MapEntry::tofrom(r),
                        1 => MapEntry::tofrom(r).always(),
                        _ => MapEntry::alloc(r),
                    };
                    rt.target(t, kernel("prop-kernel").map(entry))?;
                }
            }
            5 => {
                rt.taskwait(t)?;
                pending = [false; NBUF];
            }
            _ => {} // gated-out op: skip
        }
    }

    // Drain epilogue: settle deferred transfers, unwind every stack.
    rt.taskwait(t)?;
    for b in 0..NBUF {
        while let Some(dir) = stacks[b].pop() {
            let entry = match dir {
                MapDir::Alloc => MapEntry::alloc(bufs[b]),
                _ => MapEntry::from(bufs[b]),
            };
            rt.target_exit_data(t, &[entry], false)?;
        }
    }
    for r in &bufs {
        rt.host_read(t, *r);
        rt.host_free(t, r.start)?;
    }
    Ok(())
}

fn op_traces(max_len: usize) -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 4..max_len)
}

proptest! {
    #[test]
    fn optimizer_rewrites_hold_the_equivalence_contract(
        ops in op_traces(32),
        iters in 0usize..4,
    ) {
        let ir = capture_run(1, |rt| drive(rt, &ops, iters)).expect("capture");
        let opt = optimize(&ir).expect("redundant programs are well-formed");

        if iters >= 2 {
            prop_assert!(
                opt.report.hoisted >= 1,
                "hoist rule missed a {iters}-iteration map loop: {}\nops: {ops:?}",
                opt.report
            );
        }

        for config in admissible_configs(&ir) {
            let eq = verify_equivalence(&ir, &opt.ir, config)
                .expect("equivalence replays never fault");
            prop_assert!(
                eq.holds(),
                "contract broken under {}: baseline {:?} vs optimized {:?}\nops: {ops:?}, iters: {iters}",
                config.label(),
                eq.baseline,
                eq.optimized
            );
        }

        // The rewrite survives the interchange format: parse(to_text) is a
        // fixed point, so optimized programs can ship as `.mapir` files.
        let text = opt.ir.to_text();
        let reparsed = MapIr::parse(&text).expect("optimizer output parses");
        prop_assert_eq!(reparsed.to_text(), text);
    }
}
