//! Acceptance bar for the shipped programs: every workload `repro --check`
//! covers must be clean — zero static diagnostics and zero sanitizer
//! diagnostics — under every configuration it supports, with the two
//! passes cross-validating. Also pins the reason `openfoam-mini-usm` is
//! excluded from the XNACK-off configurations: checked against Copy
//! statically, its raw accesses are exactly the MC005 fatal-fault hazard
//! the paper's §IV-B describes.

use omp_mapcheck::{capture_workload, check, check_workload, harness};
use omp_offload::{DiagCode, MapIr, RuntimeConfig};
use workloads::{NioSize, OpenFoamMini, QmcPack};

#[test]
fn every_shipped_workload_is_clean_under_all_compatible_configs() {
    for w in harness::shipped_workloads() {
        let cells = check_workload(w.as_ref()).expect("capture succeeds");
        assert_eq!(cells.len(), harness::configs_for(w.as_ref()).len());
        for c in &cells {
            assert!(
                c.diagnostics.is_empty(),
                "{} [{}]: static diagnostics on a shipped workload: {:?}",
                c.workload,
                c.config.label(),
                c.diagnostics
            );
            assert!(
                c.sanitizer_diagnostics.is_empty(),
                "{} [{}]: sanitizer diagnostics on a shipped workload: {:?}",
                c.workload,
                c.config.label(),
                c.sanitizer_diagnostics
            );
            assert!(c.cross_validated);
        }
        assert!(!harness::has_errors(&cells));
    }
}

/// The USM-only workload is not mis-gated: under the XNACK-off Copy
/// configuration the static checker predicts its raw accesses fault (MC005),
/// which is exactly why `configs_for` restricts it to the XNACK pair.
#[test]
fn openfoam_under_copy_is_predicted_to_fault() {
    let w = OpenFoamMini::scaled(0.02);
    let ir = capture_workload(&w, 1).expect("capture");
    let diags = check(&ir, RuntimeConfig::LegacyCopy);
    assert!(
        diags.iter().any(|d| d.code == DiagCode::Mc005),
        "expected MC005 under Copy: {diags:?}"
    );
    assert!(check(&ir, RuntimeConfig::UnifiedSharedMemory).is_empty());
}

/// A multi-threaded capture serializes and parses back identically — the
/// MapIR text format is a faithful round-trip even for interleaved
/// per-thread op streams with nowait kernels.
#[test]
fn qmcpack_capture_round_trips_through_text() {
    let w = QmcPack::nio(NioSize { factor: 2 })
        .with_steps(2)
        .with_nowait();
    let ir = capture_workload(&w, 2).expect("capture");
    assert!(ir.kernels() > 0);
    let text = ir.to_text();
    assert_eq!(MapIr::parse(&text).expect("parse"), ir);
}
