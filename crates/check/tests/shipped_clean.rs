//! Acceptance bar for the shipped programs: every workload `repro --check`
//! covers must be error-free — the only tolerated diagnostics are MC007
//! warnings (redundant re-maps of present extents), which are exactly the
//! sites the elision pass promotes. Every cell must cross-validate
//! (static == sanitizer verdict) and satisfy the elision contract: the
//! online-elided run is diagnostic-clean, bit-identical to the unelided
//! run, and recovers `mm_saved` exactly. Also pins the reason
//! `openfoam-mini-usm` is excluded from the XNACK-off configurations:
//! checked against Copy statically, its raw accesses are exactly the MC005
//! fatal-fault hazard the paper's §IV-B describes.

use apu_mem::CostModel;
use hsa_rocr::Topology;
use omp_mapcheck::{capture_workload, check, check_workload, elision_plan, harness};
use omp_offload::{
    replay, replay_threads, DiagCode, ElideMode, MapIr, OmpRuntime, RuntimeConfig, Severity,
};
use workloads::{NioSize, OpenFoamMini, QmcPack, Stream, Workload};

#[test]
fn every_shipped_workload_is_error_free_under_all_compatible_configs() {
    for w in harness::shipped_workloads() {
        let cells = check_workload(w.as_ref()).expect("capture succeeds");
        assert_eq!(cells.len(), harness::configs_for(w.as_ref()).len());
        for c in &cells {
            assert!(
                c.diagnostics
                    .iter()
                    .all(|d| d.code == DiagCode::Mc007 && d.severity() == Severity::Warning),
                "{} [{}]: non-MC007 static diagnostics on a shipped workload: {:?}",
                c.workload,
                c.config.label(),
                c.diagnostics
            );
            assert!(c.cross_validated, "{} [{}]", c.workload, c.config.label());
            assert!(
                c.elision_verified,
                "{} [{}]: elision contract broken",
                c.workload,
                c.config.label()
            );
        }
        assert!(!harness::has_errors(&cells));
    }
}

/// The elision pass is not a no-op on the shipped programs: under Copy data
/// handling the steady-state workloads recover strictly positive map-service
/// time.
#[test]
fn elision_recovers_map_service_on_steady_state_workloads_under_copy() {
    for name in ["qmcpack-nio-S2", "babelstream", "mini-cg"] {
        let cells = harness::check_all(Some(name)).expect("check");
        let copy = cells
            .iter()
            .find(|c| c.workload == name && c.config == RuntimeConfig::LegacyCopy)
            .expect("copy cell");
        assert!(copy.maps_elided > 0, "{name}: no maps elided");
        assert!(
            copy.mm_saved > sim_des::VirtDuration::ZERO,
            "{name}: nothing saved"
        );
    }
}

/// Profile-guided elision end-to-end: capture → `elision_plan` → plan-mode
/// replay. The planned replay elides exactly the planned sites, stays
/// sanitizer-clean, and is bit-identical to an unelided replay of the same
/// capture under every configuration.
#[test]
fn plan_mode_replay_elides_the_planned_sites() {
    let w = Stream::scaled(0.05);
    let ir = capture_workload(&w, 1).expect("capture");
    let plan = elision_plan(&ir);
    assert!(!plan.is_empty(), "stream capture should have MC007 sites");
    for config in RuntimeConfig::ALL {
        let run = |elide: ElideMode| {
            let mut rt = OmpRuntime::builder(CostModel::mi300a_no_thp(), Topology::default())
                .config(config)
                .threads(replay_threads(&ir))
                .sanitize(true)
                .elide(elide)
                .build()
                .unwrap();
            replay(&mut rt, &ir).expect("replay");
            let digest = rt.memory_digest();
            let clean = rt
                .sanitizer_finalize()
                .iter()
                .all(|d| d.code == DiagCode::Mc007);
            (digest, *rt.ledger(), clean)
        };
        let (d_off, off, _) = run(ElideMode::Off);
        let (d_plan, planned, clean) = run(ElideMode::Plan(plan.clone()));
        assert_eq!(d_off, d_plan, "{config:?}: replay digests diverge");
        assert!(clean, "{config:?}: planned replay not clean");
        assert_eq!(
            planned.maps_elided as usize,
            plan.len(),
            "{config:?}: applied sites != planned sites"
        );
        assert_eq!(off.copies, planned.copies, "{config:?}");
        assert_eq!(
            off.mm_total().saturating_sub(planned.mm_total()),
            planned.mm_saved,
            "{config:?}: accounting identity broken"
        );
    }
}

/// The planner agrees with the runtime's online mode: an online run of the
/// capture elides the same number of maps the static plan contains.
#[test]
fn static_plan_matches_online_elision() {
    let w = QmcPack::nio(NioSize { factor: 2 }).with_steps(3);
    let ir = capture_workload(&w, 2).expect("capture");
    let plan = elision_plan(&ir);
    let mut rt = OmpRuntime::builder(CostModel::mi300a_no_thp(), Topology::default())
        .config(RuntimeConfig::LegacyCopy)
        .threads(2)
        .elide(ElideMode::Online)
        .build()
        .unwrap();
    w.run(&mut rt).unwrap();
    assert_eq!(rt.ledger().maps_elided as usize, plan.len());
}

/// The USM-only workload is not mis-gated: under the XNACK-off Copy
/// configuration the static checker predicts its raw accesses fault (MC005),
/// which is exactly why `configs_for` restricts it to the XNACK pair.
#[test]
fn openfoam_under_copy_is_predicted_to_fault() {
    let w = OpenFoamMini::scaled(0.02);
    let ir = capture_workload(&w, 1).expect("capture");
    let diags = check(&ir, RuntimeConfig::LegacyCopy);
    assert!(
        diags.iter().any(|d| d.code == DiagCode::Mc005),
        "expected MC005 under Copy: {diags:?}"
    );
    assert!(check(&ir, RuntimeConfig::UnifiedSharedMemory).is_empty());
}

/// A multi-threaded capture serializes and parses back identically — the
/// MapIR text format is a faithful round-trip even for interleaved
/// per-thread op streams with nowait kernels.
#[test]
fn qmcpack_capture_round_trips_through_text() {
    let w = QmcPack::nio(NioSize { factor: 2 })
        .with_steps(2)
        .with_nowait();
    let ir = capture_workload(&w, 2).expect("capture");
    assert!(ir.kernels() > 0);
    let text = ir.to_text();
    assert_eq!(MapIr::parse(&text).expect("parse"), ir);
}
