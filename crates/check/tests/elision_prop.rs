//! Property: map elision is semantics-preserving on randomized well-formed
//! programs that *do* contain MC007 sites.
//!
//! The driver is the well-formed-program state machine with one liberty the
//! strict variant forbids: re-maps of present extents may carry transfer
//! directions (the MC007-redundant pattern real programs exhibit). For every
//! generated program and every configuration:
//!
//! * the unelided sanitized run reports nothing but MC007 warnings, and the
//!   static checker agrees;
//! * the online-elided run reports ZERO diagnostics;
//! * both runs are bit-identical in memory (digest taken before teardown)
//!   and agree on every operation counter, differing only in the elision
//!   fields, with `mm_total(off) − mm_total(online) == mm_saved` exactly;
//! * a plan-mode run driven by [`elision_plan`] of the program's capture
//!   elides the same sites the online mode does and matches the same
//!   digest.

use apu_mem::{AddrRange, CostModel};
use hsa_rocr::Topology;
use omp_mapcheck::{capture_run, check, elision_plan};
use omp_offload::{
    DiagCode, ElideMode, MapDir, MapEntry, OmpError, OmpRuntime, RuntimeConfig, TargetRegion,
};
use proptest::prelude::*;
use sim_des::VirtDuration;

const NBUF: usize = 4;
const BUF: u64 = 8192;

fn kernel(name: &'static str) -> TargetRegion<'static> {
    TargetRegion::new(name, VirtDuration::from_micros(3))
}

/// Interpret the opcode trace as a well-formed-but-redundantly-mapping
/// program against `rt`. Returns the memory digest taken before teardown
/// (teardown frees the buffers, which would empty the digest).
fn drive(rt: &mut OmpRuntime, ops: &[(u8, u8, u8)]) -> Result<u64, OmpError> {
    let t = 0usize;
    let mut bufs = Vec::with_capacity(NBUF);
    for _ in 0..NBUF {
        let a = rt.host_alloc(t, BUF)?;
        let r = AddrRange::new(a, BUF);
        rt.host_write(t, r)?;
        bufs.push(r);
    }

    // Per-buffer stack of enter directions (refcount model) and whether a
    // nowait kernel's deferred exit is still in flight. The *first* map of a
    // buffer always carries a transfer direction, so the final (stack-
    // bottom) exit is a `from` that syncs the host copy — without it, a
    // kernel's device writes under an unelided transfer-direction re-map
    // would be a real MC004 staleness hazard, not a redundancy warning.
    let mut stacks: Vec<Vec<MapDir>> = vec![Vec::new(); NBUF];
    let mut pending = [false; NBUF];

    for &(op, buf, aux) in ops {
        let b = buf as usize % NBUF;
        let r = bufs[b];
        let closed = stacks[b].is_empty() && !pending[b];
        match op % 6 {
            0 if closed => rt.host_write(t, r)?,
            1 if closed => rt.host_read(t, r),
            2 => {
                let dir = if closed {
                    if aux & 1 == 1 {
                        MapDir::To
                    } else {
                        MapDir::ToFrom
                    }
                } else {
                    // Re-map of a present extent: transfer directions here
                    // are exactly the MC007 sites elision promotes.
                    match aux % 3 {
                        0 => MapDir::To,
                        1 => MapDir::ToFrom,
                        _ => MapDir::Alloc,
                    }
                };
                let entry = match dir {
                    MapDir::To => MapEntry::to(r),
                    MapDir::ToFrom => MapEntry::tofrom(r),
                    _ => MapEntry::alloc(r),
                };
                rt.target_enter_data(t, &[entry])?;
                stacks[b].push(dir);
            }
            3 if !stacks[b].is_empty() && !pending[b] => {
                let entry = match stacks[b].pop().unwrap() {
                    MapDir::Alloc => MapEntry::alloc(r),
                    _ => MapEntry::from(r),
                };
                rt.target_exit_data(t, &[entry], false)?;
            }
            4 => {
                if closed {
                    let region = kernel("prop-kernel").map(MapEntry::tofrom(r));
                    if aux & 1 == 1 {
                        rt.target_nowait(t, region)?;
                        pending[b] = true;
                    } else {
                        rt.target(t, region)?;
                    }
                } else {
                    // Present extent: plain transfer-direction re-maps are
                    // allowed here (MC007 candidates), alongside the
                    // always/alloc forms the strict driver uses.
                    let entry = match aux % 3 {
                        0 => MapEntry::tofrom(r),
                        1 => MapEntry::tofrom(r).always(),
                        _ => MapEntry::alloc(r),
                    };
                    rt.target(t, kernel("prop-kernel").map(entry))?;
                }
            }
            5 => {
                rt.taskwait(t)?;
                pending = [false; NBUF];
            }
            _ => {} // gated-out op: skip
        }
    }

    // Drain epilogue: settle deferred transfers, unwind every stack.
    rt.taskwait(t)?;
    for b in 0..NBUF {
        while let Some(dir) = stacks[b].pop() {
            let entry = match dir {
                MapDir::Alloc => MapEntry::alloc(bufs[b]),
                _ => MapEntry::from(bufs[b]),
            };
            rt.target_exit_data(t, &[entry], false)?;
        }
    }
    for r in &bufs {
        rt.host_read(t, *r);
    }
    let digest = rt.memory_digest();
    for r in &bufs {
        rt.host_free(t, r.start)?;
    }
    Ok(digest)
}

fn op_traces(max_len: usize) -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 4..max_len)
}

fn sanitized_run(
    config: RuntimeConfig,
    elide: ElideMode,
    ops: &[(u8, u8, u8)],
) -> (u64, omp_offload::OverheadLedger, Vec<DiagCode>) {
    let mut rt = OmpRuntime::builder(CostModel::mi300a_no_thp(), Topology::default())
        .config(config)
        .sanitize(true)
        .elide(elide)
        .build()
        .expect("build sanitized runtime");
    let digest = drive(&mut rt, ops).expect("well-formed run");
    let ledger = *rt.ledger();
    let codes = rt.sanitizer_finalize().iter().map(|d| d.code).collect();
    (digest, ledger, codes)
}

proptest! {
    #[test]
    fn elision_preserves_semantics_on_redundantly_mapped_programs(ops in op_traces(40)) {
        let ir = capture_run(1, |rt| drive(rt, &ops).map(|_| ())).expect("capture");
        let plan = elision_plan(&ir);
        for config in RuntimeConfig::ALL {
            let static_codes: Vec<DiagCode> =
                check(&ir, config).iter().map(|d| d.code).collect();
            prop_assert!(
                static_codes.iter().all(|&c| c == DiagCode::Mc007),
                "static non-MC007 under {}: {static_codes:?}\nops: {ops:?}",
                config.label()
            );

            let (d_off, off, off_codes) = sanitized_run(config, ElideMode::Off, &ops);
            prop_assert!(
                off_codes.iter().all(|&c| c == DiagCode::Mc007),
                "sanitizer non-MC007 under {}: {off_codes:?}\nops: {ops:?}",
                config.label()
            );
            prop_assert_eq!(&static_codes, &off_codes);

            let (d_on, on, on_codes) = sanitized_run(config, ElideMode::Online, &ops);
            prop_assert!(
                on_codes.is_empty(),
                "elided run not clean under {}: {on_codes:?}\nops: {ops:?}",
                config.label()
            );
            prop_assert_eq!(d_off, d_on, "digest diverged under {}", config.label());
            prop_assert_eq!(
                (off.copies, off.bytes_copied, off.kernels, off.maps, off.prefault_calls),
                (on.copies, on.bytes_copied, on.kernels, on.maps, on.prefault_calls),
                "counters diverged under {}",
                config.label()
            );
            prop_assert_eq!(
                off.mm_total().saturating_sub(on.mm_total()),
                on.mm_saved,
                "accounting identity broken under {}",
                config.label()
            );
            prop_assert_eq!(off.maps_elided, 0);

            // Profile-guided mode applies the statically planned sites and
            // lands on the same memory.
            let (d_plan, planned, plan_codes) =
                sanitized_run(config, ElideMode::Plan(plan.clone()), &ops);
            prop_assert!(plan_codes.is_empty(), "planned run not clean: {plan_codes:?}");
            prop_assert_eq!(d_off, d_plan);
            prop_assert_eq!(planned.maps_elided, on.maps_elided);
            prop_assert_eq!(planned.maps_elided as usize, plan.len());
        }
    }
}
