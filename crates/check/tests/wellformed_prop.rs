//! Property: well-formed map programs produce ZERO diagnostics — from the
//! static checker under every configuration AND from the runtime sanitizer
//! on a real run under every configuration.
//!
//! Random opcode traces are folded onto a small gated driver whose state
//! machine only emits directive sequences that respect the data-environment
//! contract: balanced enter/exit per buffer, host access only while a
//! buffer is unmapped and no deferred transfer is in flight, `alloc`-only
//! re-maps of present extents, `always` or `alloc` kernel maps on present
//! extents, raw kernel accesses only into `omp_target_alloc` pool memory,
//! and a drain epilogue (taskwait + exits + frees). If either pass reports
//! anything on such a program, the checker (or sanitizer) has a false
//! positive — the property that keeps mapcheck adoptable.

use apu_mem::{AddrRange, CostModel};
use hsa_rocr::Topology;
use omp_mapcheck::{capture_run, check};
use omp_offload::{MapDir, MapEntry, OmpError, OmpRuntime, RuntimeConfig, TargetRegion};
use proptest::prelude::*;
use sim_des::VirtDuration;

const NBUF: usize = 4;
const BUF: u64 = 8192;

fn kernel(name: &'static str) -> TargetRegion<'static> {
    TargetRegion::new(name, VirtDuration::from_micros(3))
}

/// Interpret the opcode trace as a well-formed program against `rt`.
/// Deterministic in `ops`, so the captured and sanitized executions issue
/// identical directive streams.
fn drive(rt: &mut OmpRuntime, ops: &[(u8, u8, u8)]) -> Result<(), OmpError> {
    let t = 0usize;
    let mut bufs = Vec::with_capacity(NBUF);
    for _ in 0..NBUF {
        let a = rt.host_alloc(t, BUF)?;
        let r = AddrRange::new(a, BUF);
        rt.host_write(t, r)?;
        bufs.push(r);
    }
    let pool = AddrRange::new(rt.omp_target_alloc(t, BUF)?, BUF);

    // Per-buffer stack of enter directions (refcount model) and whether a
    // nowait kernel's deferred exit is still in flight.
    let mut stacks: Vec<Vec<MapDir>> = vec![Vec::new(); NBUF];
    let mut pending = [false; NBUF];

    for &(op, buf, aux) in ops {
        let b = buf as usize % NBUF;
        let r = bufs[b];
        let closed = stacks[b].is_empty() && !pending[b];
        match op % 8 {
            0 if closed => rt.host_write(t, r)?,
            1 if closed => rt.host_read(t, r),
            2 => {
                let dir = if closed {
                    // First map may transfer; re-maps of a present extent
                    // (explicitly entered or held by a nowait kernel's
                    // deferred exit) must be `alloc` — anything else is
                    // MC007-redundant.
                    match aux % 3 {
                        0 => MapDir::To,
                        1 => MapDir::ToFrom,
                        _ => MapDir::Alloc,
                    }
                } else {
                    MapDir::Alloc
                };
                let entry = match dir {
                    MapDir::To => MapEntry::to(r),
                    MapDir::ToFrom => MapEntry::tofrom(r),
                    _ => MapEntry::alloc(r),
                };
                rt.target_enter_data(t, &[entry])?;
                stacks[b].push(dir);
            }
            3 if !stacks[b].is_empty() && !pending[b] => {
                let entry = match stacks[b].pop().unwrap() {
                    MapDir::Alloc => MapEntry::alloc(r),
                    _ => MapEntry::from(r),
                };
                rt.target_exit_data(t, &[entry], false)?;
            }
            4 => {
                if closed {
                    // Fresh transient map; optionally nowait (the deferred
                    // from-transfer blocks host access until taskwait).
                    let region = kernel("prop-kernel").map(MapEntry::tofrom(r));
                    if aux & 1 == 1 {
                        rt.target_nowait(t, region)?;
                        pending[b] = true;
                    } else {
                        rt.target(t, region)?;
                    }
                } else {
                    // Present extent: only `alloc` or `always` maps are
                    // hazard-free in Copy mode.
                    let entry = if aux & 1 == 1 {
                        MapEntry::tofrom(r).always()
                    } else {
                        MapEntry::alloc(r)
                    };
                    rt.target(t, kernel("prop-kernel").map(entry))?;
                }
            }
            5 if !stacks[b].is_empty() && !pending[b] => {
                if aux & 1 == 1 {
                    rt.target_update(t, &[r], &[])?;
                } else {
                    rt.target_update(t, &[], &[r])?;
                }
            }
            6 => rt.target(t, kernel("prop-pool").access(pool))?,
            7 => {
                rt.taskwait(t)?;
                pending = [false; NBUF];
            }
            _ => {} // gated-out op: skip
        }
    }

    // Drain epilogue: settle deferred transfers, unwind every stack.
    rt.taskwait(t)?;
    for b in 0..NBUF {
        while let Some(dir) = stacks[b].pop() {
            let entry = match dir {
                MapDir::Alloc => MapEntry::alloc(bufs[b]),
                _ => MapEntry::from(bufs[b]),
            };
            rt.target_exit_data(t, &[entry], false)?;
        }
    }
    rt.omp_target_free(t, pool.start)?;
    for r in &bufs {
        rt.host_read(t, *r);
        rt.host_free(t, r.start)?;
    }
    Ok(())
}

fn op_traces(max_len: usize) -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 4..max_len)
}

proptest! {
    /// Zero diagnostics from both passes under all four configurations.
    #[test]
    fn wellformed_programs_are_clean(ops in op_traces(40)) {
        let ir = capture_run(1, |rt| drive(rt, &ops)).expect("well-formed capture");
        for config in RuntimeConfig::ALL {
            let diags = check(&ir, config);
            prop_assert!(
                diags.is_empty(),
                "static false positive under {}: {diags:?}\nops: {ops:?}",
                config.label()
            );
            let mut rt = OmpRuntime::builder(CostModel::mi300a_no_thp(), Topology::default())
                .config(config)
                .sanitize(true)
                .build()
                .expect("build sanitized runtime");
            drive(&mut rt, &ops).expect("well-formed run");
            let dyn_diags = rt.sanitizer_finalize().to_vec();
            prop_assert!(
                dyn_diags.is_empty(),
                "sanitizer false positive under {}: {dyn_diags:?}\nops: {ops:?}",
                config.label()
            );
        }
    }
}
