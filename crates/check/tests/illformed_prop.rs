//! Property: on deliberately ill-formed programs the static checker and the
//! runtime sanitizer agree on the complete diagnostic code list — the
//! cross-validation contract fuzzed, not just snapshot-tested.
//!
//! The strict well-formed generator from `wellformed_prop` runs (and fully
//! drains) first, then one deliberate gate violation is injected on a
//! scratch extent the prefix never touches: release of a never-mapped
//! extent, use after `delete`, a stale device read (host write after the
//! `to` transfer), or a stale host read (result race with a `nowait`
//! region's deferred from-transfer). Fatal violations abort the real run;
//! the sanitizer's findings up to the abort are its diagnosis, and the
//! static checker over the full capture must emit exactly the same codes —
//! in a randomized context, not only the golden corpus's minimal one.

use apu_mem::{AddrRange, CostModel};
use hsa_rocr::Topology;
use omp_mapcheck::{capture_run, check};
use omp_offload::{DiagCode, MapDir, MapEntry, OmpError, OmpRuntime, RuntimeConfig, TargetRegion};
use proptest::prelude::*;
use sim_des::VirtDuration;

const NBUF: usize = 4;
const BUF: u64 = 8192;

/// The checker's clocks model Copy-mode staleness, so the stale-read
/// injections designate the configuration the golden corpus uses.
const CONFIG: RuntimeConfig = RuntimeConfig::LegacyCopy;

fn kernel(name: &'static str) -> TargetRegion<'static> {
    TargetRegion::new(name, VirtDuration::from_micros(3))
}

/// Code each injection is designed to trip (secondary codes may ride along;
/// the agreement assertion covers the complete list either way).
fn designated(inj: u8) -> DiagCode {
    match inj % 4 {
        0 | 1 => DiagCode::Mc002,
        2 => DiagCode::Mc003,
        _ => DiagCode::Mc004,
    }
}

/// The strict well-formed state machine, followed by one injected gate
/// violation on `s`. Fatal injections propagate the runtime's error; in
/// capture mode directives are recorded, not executed, so the capture
/// always covers the whole program.
fn drive(rt: &mut OmpRuntime, ops: &[(u8, u8, u8)], inj: u8) -> Result<(), OmpError> {
    let t = 0usize;
    let s = AddrRange::new(rt.host_alloc(t, BUF)?, BUF);
    rt.host_write(t, s)?;

    let mut bufs = Vec::with_capacity(NBUF);
    for _ in 0..NBUF {
        let a = rt.host_alloc(t, BUF)?;
        let r = AddrRange::new(a, BUF);
        rt.host_write(t, r)?;
        bufs.push(r);
    }
    let pool = AddrRange::new(rt.omp_target_alloc(t, BUF)?, BUF);

    let mut stacks: Vec<Vec<MapDir>> = vec![Vec::new(); NBUF];
    let mut pending = [false; NBUF];

    for &(op, buf, aux) in ops {
        let b = buf as usize % NBUF;
        let r = bufs[b];
        let closed = stacks[b].is_empty() && !pending[b];
        match op % 8 {
            0 if closed => rt.host_write(t, r)?,
            1 if closed => rt.host_read(t, r),
            2 => {
                let dir = if closed {
                    match aux % 3 {
                        0 => MapDir::To,
                        1 => MapDir::ToFrom,
                        _ => MapDir::Alloc,
                    }
                } else {
                    MapDir::Alloc
                };
                let entry = match dir {
                    MapDir::To => MapEntry::to(r),
                    MapDir::ToFrom => MapEntry::tofrom(r),
                    _ => MapEntry::alloc(r),
                };
                rt.target_enter_data(t, &[entry])?;
                stacks[b].push(dir);
            }
            3 if !stacks[b].is_empty() && !pending[b] => {
                let entry = match stacks[b].pop().unwrap() {
                    MapDir::Alloc => MapEntry::alloc(r),
                    _ => MapEntry::from(r),
                };
                rt.target_exit_data(t, &[entry], false)?;
            }
            4 => {
                if closed {
                    let region = kernel("prop-kernel").map(MapEntry::tofrom(r));
                    if aux & 1 == 1 {
                        rt.target_nowait(t, region)?;
                        pending[b] = true;
                    } else {
                        rt.target(t, region)?;
                    }
                } else {
                    let entry = if aux & 1 == 1 {
                        MapEntry::tofrom(r).always()
                    } else {
                        MapEntry::alloc(r)
                    };
                    rt.target(t, kernel("prop-kernel").map(entry))?;
                }
            }
            5 if !stacks[b].is_empty() && !pending[b] => {
                if aux & 1 == 1 {
                    rt.target_update(t, &[r], &[])?;
                } else {
                    rt.target_update(t, &[], &[r])?;
                }
            }
            6 => rt.target(t, kernel("prop-pool").access(pool))?,
            7 => {
                rt.taskwait(t)?;
                pending = [false; NBUF];
            }
            _ => {} // gated-out op: skip
        }
    }

    // Drain the well-formed prefix completely, so the injection's codes are
    // the program's only codes.
    rt.taskwait(t)?;
    for b in 0..NBUF {
        while let Some(dir) = stacks[b].pop() {
            let entry = match dir {
                MapDir::Alloc => MapEntry::alloc(bufs[b]),
                _ => MapEntry::from(bufs[b]),
            };
            rt.target_exit_data(t, &[entry], false)?;
        }
    }
    rt.omp_target_free(t, pool.start)?;
    for r in &bufs {
        rt.host_read(t, *r);
        rt.host_free(t, r.start)?;
    }

    match inj % 4 {
        0 => {
            // Missing map: release an extent that was never entered (fatal).
            rt.target_exit_data(t, &[MapEntry::from(s)], false)?;
        }
        1 => {
            // Use after delete: `delete` wipes the mapping despite refcount
            // 2, so the balancing exit releases a gone extent (fatal).
            rt.target_enter_data(t, &[MapEntry::to(s)])?;
            rt.target_enter_data(t, &[MapEntry::alloc(s)])?;
            rt.target_exit_data(t, &[MapEntry::from(s)], true)?;
            rt.target_exit_data(t, &[MapEntry::from(s)], false)?;
        }
        2 => {
            // Stale device read: the host writes after the to-transfer and
            // the kernel then reads the stale device copy.
            rt.target_enter_data(t, &[MapEntry::to(s)])?;
            rt.host_write(t, s)?;
            rt.target(t, kernel("stale-read").map(MapEntry::to(s)))?;
            rt.target_exit_data(t, &[MapEntry::alloc(s)], false)?;
        }
        _ => {
            // Stale host read: the host consumes the result before the
            // nowait region's deferred from-transfer has run.
            rt.target_nowait(t, kernel("producer").map(MapEntry::tofrom(s)))?;
            rt.host_read(t, s);
            rt.taskwait(t)?;
        }
    }
    rt.host_free(t, s.start)?;
    Ok(())
}

fn op_traces(max_len: usize) -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 4..max_len)
}

fn sorted_codes(diags: &[omp_offload::Diagnostic]) -> Vec<DiagCode> {
    let mut v: Vec<DiagCode> = diags.iter().map(|d| d.code).collect();
    v.sort();
    v
}

proptest! {
    #[test]
    fn both_passes_emit_the_same_codes_on_injected_violations(
        ops in op_traces(32),
        inj in any::<u8>(),
    ) {
        let ir = capture_run(1, |rt| drive(rt, &ops, inj)).expect("capture never faults");
        let st = check(&ir, CONFIG);

        let mut rt = OmpRuntime::builder(CostModel::mi300a_no_thp(), Topology::default())
            .config(CONFIG)
            .sanitize(true)
            .build()
            .expect("build sanitized runtime");
        let _ = drive(&mut rt, &ops, inj); // fatal injections abort mid-run
        let dy = rt.sanitizer_finalize().to_vec();

        let code = designated(inj);
        prop_assert!(
            st.iter().any(|d| d.code == code),
            "static pass missed {code} (injection {}): {st:?}\nops: {ops:?}",
            inj % 4
        );
        prop_assert!(
            dy.iter().any(|d| d.code == code),
            "sanitizer missed {code} (injection {}): {dy:?}\nops: {ops:?}",
            inj % 4
        );
        prop_assert_eq!(
            sorted_codes(&st),
            sorted_codes(&dy),
            "passes disagree (injection {}):\n  static: {:?}\n  sanitizer: {:?}\nops: {ops:?}",
            inj % 4,
            st,
            dy
        );
    }
}
