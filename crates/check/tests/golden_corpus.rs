//! The cross-validation contract, executed: every golden ill-formed program
//! must be flagged with its designated MC00x code by BOTH the static checker
//! (abstract interpretation of a capture) and the runtime sanitizer (a real
//! run under the program's configuration), and the two passes must agree on
//! the complete code list. The static diagnostics' rendered text is
//! snapshot-tested so the message format is a stable contract.

use apu_mem::CostModel;
use hsa_rocr::Topology;
use omp_mapcheck::{capture_run, check, corpus};
use omp_offload::{DiagCode, Diagnostic, OmpRuntime};

/// Static pass: capture the program (capture mode never faults — directives
/// are recorded, not executed) and abstractly interpret the MapIR under the
/// program's designated configuration.
fn static_diags(p: &corpus::GoldenProgram) -> Vec<Diagnostic> {
    let ir = capture_run(1, |rt| (p.run)(rt)).expect("capture never faults");
    check(&ir, p.config)
}

/// Dynamic pass: run the program for real with the sanitizer on. Fatal
/// hazards abort the run (ignored); the sanitizer's findings up to and
/// including the end-of-program leak check are the diagnosis.
fn dynamic_diags(p: &corpus::GoldenProgram) -> Vec<Diagnostic> {
    let mut rt = OmpRuntime::builder(CostModel::mi300a_no_thp(), Topology::default())
        .config(p.config)
        .sanitize(true)
        .build()
        .expect("build sanitized runtime");
    let _ = (p.run)(&mut rt);
    rt.sanitizer_finalize().to_vec()
}

fn codes(diags: &[Diagnostic]) -> Vec<DiagCode> {
    let mut v: Vec<DiagCode> = diags.iter().map(|d| d.code).collect();
    v.sort();
    v
}

#[test]
fn every_code_is_caught_by_both_passes_and_they_agree() {
    for p in corpus::all() {
        let st = static_diags(&p);
        let dy = dynamic_diags(&p);
        assert!(
            st.iter().any(|d| d.code == p.code),
            "{}: static pass missed {}: {st:?}",
            p.name,
            p.code
        );
        assert!(
            dy.iter().any(|d| d.code == p.code),
            "{}: sanitizer missed {}: {dy:?}",
            p.name,
            p.code
        );
        assert_eq!(
            codes(&st),
            codes(&dy),
            "{}: static/sanitizer code lists disagree\n  static: {st:?}\n  sanitizer: {dy:?}",
            p.name
        );
    }
}

/// Expected rendered text of the static diagnostics, per program. Some
/// programs trip secondary codes alongside their designated one (a stale
/// to-map re-map is also redundant; an aborted double-map leaks) — the
/// snapshot pins the complete, ordered list.
fn expected_static_text(name: &str) -> &'static [&'static str] {
    match name {
        "golden-mc001-leak" => &[
            "MC001 error [Copy] thread 0 extent [0x500000033000, +4096): mapping never released: refcount still 1 at program end",
        ],
        "golden-mc002-release-unmapped" => &[
            "MC002 error [Copy] thread 0 extent [0x500000033000, +4096): release of an extent that was never mapped",
        ],
        "golden-mc003-stale-device-read" => &[
            "MC007 warning [Copy] thread 0 extent [0x500000033000, +4096): `to` re-map of an already-present extent transfers nothing (refcount bump only) — zero-copy promotion candidate",
            "MC003 error [Copy] thread 0 extent [0x500000033000, +4096): kernel reads the device copy, but the host wrote the range after the last to-transfer; add `always` or a `target update to`",
        ],
        "golden-mc004-stale-host-read" => &[
            "MC004 error [Copy] thread 0 extent [0x500000033000, +4096): host reads the range, but the device copy holds newer kernel writes; add a `from` transfer or a `target update from`",
        ],
        "golden-mc005-raw-access-no-xnack" => &[
            "MC005 error [Copy] thread 0 extent [0x500000033000, +4096): raw host-pointer access needs XNACK demand paging; under this configuration the GPU has no translation and the access faults fatally",
        ],
        "golden-mc006-overlapping-double-map" => &[
            "MC006 error [Implicit Z-C] thread 0 extent [0x500000033800, +4096): map range partially overlaps an already-mapped extent with mismatched bounds",
            "MC001 error [Implicit Z-C] thread 0 extent [0x500000033000, +4096): mapping never released: refcount still 1 at program end",
        ],
        "golden-mc007-redundant-remap" => &[
            "MC007 warning [Eager Maps] thread 0 extent [0x500000033000, +4096): `to` re-map of an already-present extent transfers nothing (refcount bump only) — zero-copy promotion candidate",
        ],
        other => panic!("no snapshot for corpus program {other}"),
    }
}

#[test]
fn static_diagnostic_text_matches_snapshot() {
    for p in corpus::all() {
        let actual: Vec<String> = static_diags(&p).iter().map(|d| d.to_string()).collect();
        let expected: Vec<String> = expected_static_text(p.name)
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            actual,
            expected,
            "\nsnapshot mismatch for {}; actual lines:\n{}",
            p.name,
            actual
                .iter()
                .map(|s| format!("    {s:?},"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
