//! Property: the telemetry stream is ledger-exact on randomized programs.
//!
//! For every generated well-formed (but redundantly mapping) program, every
//! configuration, with elision off and online, healthy and fault-injected:
//!
//! * folding the event stream reproduces the overhead ledger **field for
//!   field** (`ledger == fold(events)` — the derivability contract);
//! * the default ring drops nothing;
//! * the JSONL export parses back into the identical report, and the fold
//!   of the parsed events still equals the ledger.
//!
//! Fault-injected runs may abort (recovery exhaustion); the contract must
//! hold at the abort point too, since events are emitted at the same sites
//! that mutate the ledger.

use apu_mem::{AddrRange, CostModel};
use hsa_rocr::Topology;
use omp_offload::telemetry::{fold, parse_jsonl, to_jsonl};
use omp_offload::{
    ElideMode, MapDir, MapEntry, OmpError, OmpRuntime, RuntimeConfig, TargetRegion, TelemetryMode,
};
use proptest::prelude::*;
use sim_des::{FaultPlan, VirtDuration};

const NBUF: usize = 4;
const BUF: u64 = 8192;

fn kernel(name: &'static str) -> TargetRegion<'static> {
    TargetRegion::new(name, VirtDuration::from_micros(3))
}

/// Interpret the opcode trace as a well-formed program against `rt` (the
/// elision property driver, minus the capture plumbing).
fn drive(rt: &mut OmpRuntime, ops: &[(u8, u8, u8)]) -> Result<(), OmpError> {
    let t = 0usize;
    let mut bufs = Vec::with_capacity(NBUF);
    for _ in 0..NBUF {
        let a = rt.host_alloc(t, BUF)?;
        let r = AddrRange::new(a, BUF);
        rt.host_write(t, r)?;
        bufs.push(r);
    }

    let mut stacks: Vec<Vec<MapDir>> = vec![Vec::new(); NBUF];
    let mut pending = [false; NBUF];

    for &(op, buf, aux) in ops {
        let b = buf as usize % NBUF;
        let r = bufs[b];
        let closed = stacks[b].is_empty() && !pending[b];
        match op % 6 {
            0 if closed => rt.host_write(t, r)?,
            1 if closed => rt.host_read(t, r),
            2 => {
                let dir = if closed {
                    if aux & 1 == 1 {
                        MapDir::To
                    } else {
                        MapDir::ToFrom
                    }
                } else {
                    match aux % 3 {
                        0 => MapDir::To,
                        1 => MapDir::ToFrom,
                        _ => MapDir::Alloc,
                    }
                };
                let entry = match dir {
                    MapDir::To => MapEntry::to(r),
                    MapDir::ToFrom => MapEntry::tofrom(r),
                    _ => MapEntry::alloc(r),
                };
                rt.target_enter_data(t, &[entry])?;
                stacks[b].push(dir);
            }
            3 if !stacks[b].is_empty() && !pending[b] => {
                let entry = match stacks[b].pop().unwrap() {
                    MapDir::Alloc => MapEntry::alloc(r),
                    _ => MapEntry::from(r),
                };
                rt.target_exit_data(t, &[entry], false)?;
            }
            4 => {
                if closed {
                    let region = kernel("prop-kernel").map(MapEntry::tofrom(r));
                    if aux & 1 == 1 {
                        rt.target_nowait(t, region)?;
                        pending[b] = true;
                    } else {
                        rt.target(t, region)?;
                    }
                } else {
                    let entry = match aux % 3 {
                        0 => MapEntry::tofrom(r),
                        1 => MapEntry::tofrom(r).always(),
                        _ => MapEntry::alloc(r),
                    };
                    rt.target(t, kernel("prop-kernel").map(entry))?;
                }
            }
            5 => {
                rt.taskwait(t)?;
                pending = [false; NBUF];
            }
            _ => {}
        }
    }

    rt.taskwait(t)?;
    for b in 0..NBUF {
        while let Some(dir) = stacks[b].pop() {
            let entry = match dir {
                MapDir::Alloc => MapEntry::alloc(bufs[b]),
                _ => MapEntry::from(bufs[b]),
            };
            rt.target_exit_data(t, &[entry], false)?;
        }
    }
    for r in &bufs {
        rt.host_free(t, r.start)?;
    }
    Ok(())
}

fn op_traces(max_len: usize) -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 4..max_len)
}

/// One telemetry-instrumented run; asserts the derivability contract and
/// the JSONL round-trip. Panics (failing the property) on any violation.
fn exact_run(
    config: RuntimeConfig,
    elide: ElideMode,
    fault_seed: Option<u64>,
    ops: &[(u8, u8, u8)],
) {
    let mut builder = OmpRuntime::builder(CostModel::mi300a_no_thp(), Topology::default())
        .config(config)
        .sanitize(true)
        .elide(elide.clone())
        .telemetry(TelemetryMode::ring());
    if let Some(seed) = fault_seed {
        builder = builder.fault_plan(FaultPlan::from_seed(seed));
    }
    let mut rt = builder.build().expect("build instrumented runtime");
    // Fault-injected runs may abort; the contract must hold regardless.
    let outcome = drive(&mut rt, ops);
    let _ = rt.sanitizer_finalize();
    let ledger = *rt.ledger();
    assert_eq!(
        rt.telemetry_fold(),
        Some(ledger),
        "fold != ledger under {} (elide {:?}, faults {:?}, run {:?})",
        config.label(),
        std::mem::discriminant(&elide),
        fault_seed,
        outcome.as_ref().err(),
    );
    assert_eq!(rt.telemetry_dropped(), 0, "default ring overflowed");

    let report = rt.finish();
    let telemetry = report.telemetry.expect("ring was on");
    let jsonl = to_jsonl(&telemetry);
    let parsed = parse_jsonl(&jsonl).expect("JSONL parses back");
    assert_eq!(parsed, telemetry, "JSONL round-trip diverged");
    assert_eq!(
        fold(&parsed.events),
        ledger,
        "fold of parsed events != ledger under {}",
        config.label()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn telemetry_fold_equals_ledger_on_random_programs(ops in op_traces(30)) {
        for config in RuntimeConfig::ALL {
            exact_run(config, ElideMode::Off, None, &ops);
            exact_run(config, ElideMode::Online, None, &ops);
            exact_run(config, ElideMode::Online, Some(0xF00D), &ops);
        }
    }
}
