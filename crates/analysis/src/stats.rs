//! Summary statistics used by the paper's methodology: medians for ratios,
//! Coefficient of Variation for robustness claims.

use sim_des::VirtDuration;

/// Median of a sample (averages the middle pair for even sizes).
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty sample");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty sample");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n-1 denominator; 0 for a single value).
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Coefficient of Variation: stddev / mean (0 when the mean is 0).
pub fn cov(values: &[f64]) -> f64 {
    let m = mean(values);
    if m == 0.0 {
        0.0
    } else {
        stddev(values) / m
    }
}

/// Median of a set of virtual durations, in nanoseconds.
pub fn median_duration(values: &[VirtDuration]) -> VirtDuration {
    let ns: Vec<f64> = values.iter().map(|d| d.as_nanos() as f64).collect();
    VirtDuration::from_nanos(median(&ns) as u64)
}

/// CoV of a set of virtual durations.
pub fn cov_duration(values: &[VirtDuration]) -> f64 {
    let ns: Vec<f64> = values.iter().map(|d| d.as_nanos() as f64).collect();
    cov(&ns)
}

/// Order of magnitude as the paper's Table III reports it: `O(10^k)` such
/// that `10^k <= value_us < 10^(k+1)`; `O(0)` for zero.
pub fn order_of_magnitude_us(d: VirtDuration) -> String {
    let us = d.as_micros_f64();
    if us < 1.0 {
        return "O(0)".to_string();
    }
    let k = us.log10().floor() as i32;
    format!("O(10^{k})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn stddev_and_cov() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((stddev(&v) - 2.138089935).abs() < 1e-6);
        assert!((cov(&v) - 0.4276179871).abs() < 1e-6);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert_eq!(cov(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn duration_helpers() {
        let ds = [
            VirtDuration::from_micros(10),
            VirtDuration::from_micros(30),
            VirtDuration::from_micros(20),
        ];
        assert_eq!(median_duration(&ds), VirtDuration::from_micros(20));
        assert!(cov_duration(&ds) > 0.0);
        assert_eq!(cov_duration(&[VirtDuration::from_micros(5); 4]), 0.0);
    }

    #[test]
    fn magnitude_orders_match_table3_style() {
        assert_eq!(order_of_magnitude_us(VirtDuration::ZERO), "O(0)");
        assert_eq!(order_of_magnitude_us(VirtDuration::from_nanos(500)), "O(0)");
        assert_eq!(
            order_of_magnitude_us(VirtDuration::from_micros(5)),
            "O(10^0)"
        );
        assert_eq!(
            order_of_magnitude_us(VirtDuration::from_micros(50)),
            "O(10^1)"
        );
        assert_eq!(
            order_of_magnitude_us(VirtDuration::from_millis(500)),
            "O(10^5)"
        );
        assert_eq!(order_of_magnitude_us(VirtDuration::from_secs(2)), "O(10^6)");
    }
}
