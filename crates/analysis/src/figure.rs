//! Line-series figures with an ASCII renderer and CSV export.
//!
//! The paper's Figures 3 and 4 are ratio-vs-X line charts with one series
//! per zero-copy configuration; this renderer reproduces them in the
//! terminal so `repro --fig3` output is directly comparable.

use std::fmt;

/// One line series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// (x, y) points in x order.
    pub points: Vec<(f64, f64)>,
}

/// A figure: several series over a shared x axis.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

const PLOT_W: usize = 64;
const PLOT_H: usize = 20;
const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

impl Figure {
    /// An empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push_series(&mut self, label: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push(Series {
            label: label.into(),
            points,
        });
    }

    /// CSV rendering: `x,<series1>,<series2>,...` per shared x value.
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();
        let mut out = String::from(&self.x_label);
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label);
        }
        out.push('\n');
        for x in xs {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push(',');
                if let Some(p) = s.points.iter().find(|p| p.0 == x) {
                    out.push_str(&format!("{:.4}", p.1));
                }
            }
            out.push('\n');
        }
        out
    }

    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        if pts.is_empty() {
            return None;
        }
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for (x, y) in pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        // Pad degenerate axes.
        if x0 == x1 {
            x1 += 1.0;
        }
        let ypad = ((y1 - y0) * 0.08).max(0.05);
        Some((x0, x1, y0 - ypad, y1 + ypad))
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let Some((x0, x1, y0, y1)) = self.bounds() else {
            return writeln!(f, "(no data)");
        };
        let mut grid = vec![vec![' '; PLOT_W]; PLOT_H];
        for (si, s) in self.series.iter().enumerate() {
            let mark = MARKS[si % MARKS.len()];
            for &(x, y) in &s.points {
                let cx = ((x - x0) / (x1 - x0) * (PLOT_W - 1) as f64).round() as usize;
                let cy = ((y - y0) / (y1 - y0) * (PLOT_H - 1) as f64).round() as usize;
                let row = PLOT_H - 1 - cy.min(PLOT_H - 1);
                grid[row][cx.min(PLOT_W - 1)] = mark;
            }
        }
        writeln!(f, "  {} (top={y1:.2}, bottom={y0:.2})", self.y_label)?;
        for row in &grid {
            writeln!(f, "  |{}", row.iter().collect::<String>())?;
        }
        writeln!(f, "  +{}", "-".repeat(PLOT_W))?;
        writeln!(f, "   {} (left={x0:.0}, right={x1:.0})", self.x_label)?;
        for (si, s) in self.series.iter().enumerate() {
            writeln!(f, "   {} {}", MARKS[si % MARKS.len()], s.label)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut fig = Figure::new("Fig 3 (S2)", "threads", "ratio");
        fig.push_series(
            "Implicit Z-C",
            vec![(1.0, 1.8), (2.0, 1.9), (4.0, 2.1), (8.0, 2.3)],
        );
        fig.push_series(
            "Eager Maps",
            vec![(1.0, 1.3), (2.0, 1.4), (4.0, 1.5), (8.0, 1.6)],
        );
        fig
    }

    #[test]
    fn ascii_render_contains_marks_and_legend() {
        let text = sample().to_string();
        assert!(text.contains('*'));
        assert!(text.contains('o'));
        assert!(text.contains("Implicit Z-C"));
        assert!(text.contains("threads"));
    }

    #[test]
    fn csv_merges_x_values() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "threads,Implicit Z-C,Eager Maps");
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("1,1.8000,1.3000"));
    }

    #[test]
    fn empty_figure_renders_gracefully() {
        let fig = Figure::new("empty", "x", "y");
        assert!(fig.to_string().contains("(no data)"));
        assert_eq!(fig.to_csv().lines().count(), 1);
    }

    #[test]
    fn degenerate_single_point_is_handled() {
        let mut fig = Figure::new("one", "x", "y");
        fig.push_series("s", vec![(5.0, 1.0)]);
        let text = fig.to_string();
        assert!(text.contains('*'));
    }
}
