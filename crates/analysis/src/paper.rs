//! Builders for every table and figure in the paper's evaluation (§V).
//!
//! Each function regenerates one artifact:
//!
//! * [`fig3`] — QMCPack Copy/zero-copy ratios vs OpenMP threads, one figure
//!   per NiO problem size.
//! * [`fig4`] — the same data sliced at 8 threads, ratio vs problem size.
//! * [`table1`] — HSA API call statistics for QMCPack S2, Copy vs Implicit
//!   Zero-Copy, at 1 and 8 threads.
//! * [`table2`] — SPECaccel Copy/zero-copy ratios for the five benchmarks.
//! * [`table3`] — MM/MI overhead orders for 403.stencil and 452.ep.

use crate::experiment::{measure, measure_all_configs, ratio, ExperimentConfig, Measurement};
use crate::figure::Figure;
use crate::stats::order_of_magnitude_us;
use crate::table::Table;
use hsa_rocr::HsaApiKind;
use omp_offload::telemetry::{attribution, AttributionReport};
use omp_offload::{ElideMode, OmpError, RuntimeConfig, TelemetryMode};
use sim_des::VirtDuration;
use workloads::{spec, MiniCg, NioSize, QmcPack, Stream, Workload};

/// Scope of a reproduction pass.
#[derive(Debug, Clone)]
pub struct PaperConfig {
    /// Shared run settings (cost model, topology, repeats, noise).
    pub exp: ExperimentConfig,
    /// QMCPack MC steps per thread for the figures.
    pub qmc_steps: usize,
    /// Repeats for QMCPack (the paper uses 4; SPECaccel 8).
    pub qmc_repeats: usize,
    /// NiO sizes to sweep.
    pub sizes: Vec<NioSize>,
    /// Host-thread counts to sweep.
    pub threads: Vec<usize>,
    /// SPECaccel benchmark scale (1.0 = ref-like).
    pub spec_scale: f64,
    /// QMCPack steps for the Table I call-count run.
    pub table1_steps: usize,
    /// Sweep worker count (`repro --jobs`); `0` = one per available core.
    /// Whatever the value, sweep outputs are byte-identical — the batch
    /// driver launders the schedule out (see `omp_batch`).
    pub jobs: usize,
}

impl PaperConfig {
    /// Full reproduction: every size, 1–8 threads, ref-scale SPECaccel.
    pub fn full() -> Self {
        PaperConfig {
            exp: ExperimentConfig::default(),
            qmc_steps: 400,
            qmc_repeats: 4,
            sizes: NioSize::ALL.to_vec(),
            threads: vec![1, 2, 4, 8],
            spec_scale: 1.0,
            table1_steps: 4000,
            jobs: 0,
        }
    }

    /// Fast pass for tests and smoke runs (minutes → seconds).
    pub fn quick() -> Self {
        PaperConfig {
            exp: ExperimentConfig {
                repeats: 2,
                ..ExperimentConfig::default()
            },
            qmc_steps: 60,
            qmc_repeats: 2,
            sizes: vec![
                NioSize { factor: 2 },
                NioSize { factor: 8 },
                NioSize { factor: 32 },
            ],
            threads: vec![1, 4],
            spec_scale: 0.04,
            table1_steps: 150,
            jobs: 0,
        }
    }

    /// Resolve [`jobs`](Self::jobs) for a sweep of `cells` cells: explicit
    /// counts pass through, `0` takes one worker per available core.
    pub fn worker_count(&self, cells: usize) -> usize {
        let jobs = if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.jobs
        };
        jobs.min(cells.max(1))
    }

    fn qmc_exp(&self) -> ExperimentConfig {
        ExperimentConfig {
            repeats: self.qmc_repeats,
            ..self.exp.clone()
        }
    }

    fn max_threads(&self) -> usize {
        self.threads.iter().copied().max().unwrap_or(1)
    }
}

/// One QMCPack measurement cell.
pub struct QmcCell {
    /// NiO size.
    pub size: NioSize,
    /// Host threads.
    pub threads: usize,
    /// Measurements in `RuntimeConfig::ALL` order.
    pub measurements: Vec<Measurement>,
}

impl QmcCell {
    /// Copy-to-`config` median ratio.
    pub fn ratio_of(&self, config: RuntimeConfig) -> f64 {
        let copy = &self.measurements[0];
        let other = self
            .measurements
            .iter()
            .find(|m| m.config == config)
            .expect("all configs measured");
        ratio(copy, other)
    }
}

/// The full QMCPack sweep behind Figures 3 and 4.
///
/// Cells run on the batch subsystem's work-stealing driver
/// ([`omp_batch::drive`]) — each cell owns its entire simulated machine, so
/// the sweep is embarrassingly parallel, and the driver restores injection
/// order on the way out, so results stay bit-identical to a sequential pass
/// at any `--jobs` count.
pub fn qmc_sweep(cfg: &PaperConfig) -> Result<Vec<QmcCell>, OmpError> {
    let exp = cfg.qmc_exp();
    let mut grid: Vec<(NioSize, usize)> = Vec::new();
    for &size in &cfg.sizes {
        for &threads in &cfg.threads {
            grid.push((size, threads));
        }
    }
    omp_batch::drive(grid.len(), cfg.worker_count(grid.len()), |i| {
        let (size, threads) = grid[i];
        let w = QmcPack::nio(size).with_steps(cfg.qmc_steps);
        measure_all_configs(&w, threads, &exp).map(|measurements| QmcCell {
            size,
            threads,
            measurements,
        })
    })
    .into_iter()
    .collect()
}

/// Figure 3: one ratio-vs-threads figure per problem size.
pub fn fig3_from_cells(cells: &[QmcCell], cfg: &PaperConfig) -> Vec<Figure> {
    cfg.sizes
        .iter()
        .map(|&size| {
            let mut fig = Figure::new(
                format!(
                    "Fig. 3 ({}): Copy / zero-copy execution-time ratio vs OpenMP threads",
                    size.label()
                ),
                "OpenMP host threads",
                "ratio (higher = zero-copy wins)",
            );
            for config in RuntimeConfig::ZERO_COPY {
                let pts: Vec<(f64, f64)> = cells
                    .iter()
                    .filter(|c| c.size == size)
                    .map(|c| (c.threads as f64, c.ratio_of(config)))
                    .collect();
                fig.push_series(config.label(), pts);
            }
            fig
        })
        .collect()
}

/// Figure 3, computed from scratch.
pub fn fig3(cfg: &PaperConfig) -> Result<Vec<Figure>, OmpError> {
    let cells = qmc_sweep(cfg)?;
    Ok(fig3_from_cells(&cells, cfg))
}

/// Figure 4: ratio vs problem size at the highest thread count.
pub fn fig4_from_cells(cells: &[QmcCell], cfg: &PaperConfig) -> Figure {
    let threads = cfg.max_threads();
    let mut fig = Figure::new(
        format!("Fig. 4: Copy / zero-copy ratio vs problem size ({threads} OpenMP threads)"),
        "NiO problem size (S-factor)",
        "ratio (higher = zero-copy wins)",
    );
    for config in RuntimeConfig::ZERO_COPY {
        let pts: Vec<(f64, f64)> = cells
            .iter()
            .filter(|c| c.threads == threads)
            .map(|c| (c.size.factor as f64, c.ratio_of(config)))
            .collect();
        fig.push_series(config.label(), pts);
    }
    fig
}

/// Figure 4, computed from scratch.
pub fn fig4(cfg: &PaperConfig) -> Result<Figure, OmpError> {
    let cells = qmc_sweep(cfg)?;
    Ok(fig4_from_cells(&cells, cfg))
}

/// The HSA calls Table I reports.
const TABLE1_CALLS: [(HsaApiKind, &str); 4] = [
    (HsaApiKind::SignalWaitScacquire, "Kernel Completion"),
    (HsaApiKind::MemoryPoolAllocate, "Allocate device memory"),
    (HsaApiKind::MemoryAsyncCopy, "Memory copy"),
    (HsaApiKind::SignalAsyncHandler, "Memory copy"),
];

/// Table I: HSA API call statistics for QMCPack S2, Copy vs Implicit
/// Zero-Copy, at 1 and `max_threads` OpenMP threads.
pub fn table1(cfg: &PaperConfig) -> Result<Table, OmpError> {
    let exp = ExperimentConfig {
        repeats: 1,
        ..cfg.exp.clone()
    };
    let w = QmcPack::nio(NioSize { factor: 2 }).with_steps(cfg.table1_steps);
    let tmax = cfg.max_threads();
    let copy_1 = measure(&w, RuntimeConfig::LegacyCopy, 1, &exp)?;
    let izc_1 = measure(&w, RuntimeConfig::ImplicitZeroCopy, 1, &exp)?;
    let copy_n = measure(&w, RuntimeConfig::LegacyCopy, tmax, &exp)?;
    let izc_n = measure(&w, RuntimeConfig::ImplicitZeroCopy, tmax, &exp)?;

    let mut t = Table::new(
        format!(
            "Table I: HSA API call statistics, QMCPack S2, Copy vs Implicit Z-C (1 and {tmax} threads)"
        ),
        &[
            "ROCr/HSA Call",
            "Used for",
            "#Calls Copy(1T)",
            "#Calls IZC(1T)",
            "Lat ratio(1T)",
            &format!("#Calls Copy({tmax}T)"),
            &format!("#Calls IZC({tmax}T)"),
            &format!("Lat ratio({tmax}T)"),
        ],
    );
    let fmt_ratio = |r: Option<f64>| match r {
        Some(v) if v >= 1000.0 => format!("{:.2e}", v),
        Some(v) => format!("{v:.2}"),
        None => "N/A".to_string(),
    };
    for (kind, used_for) in TABLE1_CALLS {
        t.push_row(vec![
            kind.symbol().to_string(),
            used_for.to_string(),
            copy_1.report.api_stats.get(kind).calls.to_string(),
            izc_1.report.api_stats.get(kind).calls.to_string(),
            fmt_ratio(
                copy_1
                    .report
                    .api_stats
                    .latency_ratio(&izc_1.report.api_stats, kind),
            ),
            copy_n.report.api_stats.get(kind).calls.to_string(),
            izc_n.report.api_stats.get(kind).calls.to_string(),
            fmt_ratio(
                copy_n
                    .report
                    .api_stats
                    .latency_ratio(&izc_n.report.api_stats, kind),
            ),
        ]);
    }
    Ok(t)
}

/// The SPECaccel suite at `scale`.
pub fn spec_suite(scale: f64) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(spec::Stencil::scaled(scale)),
        Box::new(spec::Lbm::scaled(scale)),
        Box::new(spec::Ep::scaled(scale)),
        Box::new(spec::SpC::scaled(scale)),
        Box::new(spec::Bt::scaled(scale)),
    ]
}

/// Table II: Copy / zero-copy ratios for the five SPECaccel benchmarks.
/// Also returns the highest CoV observed (the paper reports ≤ 0.03).
pub fn table2(cfg: &PaperConfig) -> Result<(Table, f64), OmpError> {
    let suite = spec_suite(cfg.spec_scale);
    // One driver cell per benchmark; each owns its simulated machines.
    let measured: Vec<Result<(String, Vec<Measurement>), OmpError>> =
        omp_batch::drive(suite.len(), cfg.worker_count(suite.len()), |i| {
            let w = &suite[i];
            Ok((w.name(), measure_all_configs(w.as_ref(), 1, &cfg.exp)?))
        });
    let mut per_bench: Vec<(String, Vec<Measurement>)> = Vec::new();
    let mut max_cov: f64 = 0.0;
    for r in measured {
        let (name, ms) = r?;
        for m in &ms {
            max_cov = max_cov.max(m.cov());
        }
        per_bench.push((name, ms));
    }
    let mut headers: Vec<&str> = vec!["Benchmark"];
    let names: Vec<String> = per_bench
        .iter()
        .map(|(n, _)| n.split('.').nth(1).unwrap_or(n).to_string())
        .collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    headers.extend(name_refs);
    let mut t = Table::new(
        "Table II: Copy / zero-copy ratios, SPECaccel 2023 C/C++ (ratio > 1: zero-copy wins)",
        &headers,
    );
    for config in RuntimeConfig::ZERO_COPY {
        let mut row = vec![config.label().to_string()];
        for (_, ms) in &per_bench {
            let copy = &ms[0];
            let other = ms.iter().find(|m| m.config == config).expect("measured");
            row.push(format!("{:.2}", ratio(copy, other)));
        }
        t.push_row(row);
    }
    Ok((t, max_cov))
}

/// Table III: MM and MI overhead orders for 403.stencil and 452.ep.
pub fn table3(cfg: &PaperConfig) -> Result<Table, OmpError> {
    let exp = ExperimentConfig {
        repeats: 1,
        ..cfg.exp.clone()
    };
    let stencil = spec::Stencil::scaled(cfg.spec_scale);
    let ep = spec::Ep::scaled(cfg.spec_scale);
    let mut t = Table::new(
        "Table III: overhead orders (microseconds) for 403.stencil and 452.ep",
        &[
            "Configuration",
            "stencil MM",
            "stencil MI",
            "ep MM",
            "ep MI",
        ],
    );
    // The paper groups Implicit Z-C with USM (identical behaviour here).
    let rows: [(&str, RuntimeConfig); 3] = [
        ("Copy", RuntimeConfig::LegacyCopy),
        ("Implicit Z-C or USM", RuntimeConfig::ImplicitZeroCopy),
        ("Eager Maps", RuntimeConfig::EagerMaps),
    ];
    for (label, config) in rows {
        let s = measure(&stencil, config, 1, &exp)?;
        let e = measure(&ep, config, 1, &exp)?;
        t.push_row(vec![
            label.to_string(),
            order_of_magnitude_us(s.report.ledger.mm_total()),
            order_of_magnitude_us(s.report.ledger.mi_total()),
            order_of_magnitude_us(e.report.ledger.mm_total()),
            order_of_magnitude_us(e.report.ledger.mi_total()),
        ]);
    }
    Ok(t)
}

/// One row of the elision delta table: the same workload measured under
/// Copy data handling with elision off and online.
#[derive(Debug)]
pub struct ElisionRow {
    /// Workload name.
    pub workload: String,
    /// MM overhead without elision.
    pub mm_unelided: VirtDuration,
    /// MM overhead with online elision.
    pub mm_elided: VirtDuration,
    /// Map-service time recovered (`mm_unelided − mm_elided`, exactly).
    pub mm_saved: VirtDuration,
    /// Maps promoted to `alloc`.
    pub maps_elided: u64,
    /// Presence-lookup cache hits during the elided run.
    pub cache_hits: u64,
    /// Presence-lookup cache misses during the elided run.
    pub cache_misses: u64,
}

/// Table III elision delta (`repro --table3 --elide`): MM overhead saved by
/// online map elision under Copy data handling for the steady-state
/// workloads, whose per-iteration re-maps of resident extents are exactly
/// the MC007 pattern. Zero-copy configurations fold the map path entirely,
/// so Copy is where the service cost — and the saving — lives.
pub fn table3_elision(cfg: &PaperConfig) -> Result<(Table, Vec<ElisionRow>), OmpError> {
    let exp_off = ExperimentConfig {
        repeats: 1,
        ..cfg.exp.clone()
    };
    let exp_on = ExperimentConfig {
        elide: ElideMode::Online,
        ..exp_off.clone()
    };
    let suite: Vec<Box<dyn Workload>> = vec![
        Box::new(QmcPack::nio(NioSize { factor: 2 }).with_steps(cfg.qmc_steps)),
        Box::new(Stream::scaled(cfg.spec_scale.max(0.02))),
        Box::new(MiniCg::scaled(cfg.spec_scale.max(0.02))),
    ];
    let mut t = Table::new(
        "Table III addendum: map-service time recovered by elision (Copy data handling)",
        &[
            "Workload",
            "MM unelided (us)",
            "MM elided (us)",
            "MM saved (us)",
            "Maps elided",
        ],
    );
    let mut rows = Vec::new();
    for w in &suite {
        let off = measure(w.as_ref(), RuntimeConfig::LegacyCopy, 1, &exp_off)?;
        let on = measure(w.as_ref(), RuntimeConfig::LegacyCopy, 1, &exp_on)?;
        let row = ElisionRow {
            workload: w.name(),
            mm_unelided: off.report.ledger.mm_total(),
            mm_elided: on.report.ledger.mm_total(),
            mm_saved: on.report.ledger.mm_saved,
            maps_elided: on.report.ledger.maps_elided,
            cache_hits: on.report.mapping_cache.0,
            cache_misses: on.report.mapping_cache.1,
        };
        t.push_row(vec![
            row.workload.clone(),
            format!("{:.1}", row.mm_unelided.as_micros_f64()),
            format!("{:.1}", row.mm_elided.as_micros_f64()),
            format!("{:.1}", row.mm_saved.as_micros_f64()),
            row.maps_elided.to_string(),
        ]);
        rows.push(row);
    }
    Ok((t, rows))
}

/// One row of the static-optimizer delta table: the same capture replayed
/// under Copy data handling as-is, with the profile-guided elision plan,
/// and after whole-program optimization.
#[derive(Debug)]
pub struct OptimizeRow {
    /// Workload name.
    pub workload: String,
    /// MM overhead of the unmodified capture's replay.
    pub mm_baseline: VirtDuration,
    /// MM overhead with plan-mode elision (`--elide plan`'s mechanism).
    pub mm_plan: VirtDuration,
    /// MM overhead of the statically optimized capture's replay.
    pub mm_optimized: VirtDuration,
    /// Extents hoisted out of recognized loops.
    pub hoisted: usize,
    /// Dead to-transfers downgraded to `alloc`.
    pub dead_to: usize,
    /// Dead from-transfers deleted.
    pub dead_from: usize,
    /// Redundant `target update` ranges dropped.
    pub updates_dropped: usize,
    /// The optimizer's cheapest-configuration recommendation.
    pub recommended: Option<RuntimeConfig>,
    /// The equivalence contract held under Copy replay.
    pub verified: bool,
}

impl OptimizeRow {
    /// Saving over the plan-elided replay — what static rewriting recovers
    /// *beyond* profile-guided elision (dead from-transfers, hoisted loops).
    pub fn saved_beyond_plan(&self) -> VirtDuration {
        self.mm_plan.saturating_sub(self.mm_optimized)
    }
}

/// Replay a capture under Copy data handling with the given elision mode
/// and report its MM overhead (the harness cost model, sanitized).
fn replay_mm_copy(ir: &omp_offload::MapIr, elide: ElideMode) -> Result<VirtDuration, OmpError> {
    let mut rt = omp_offload::OmpRuntime::builder(
        apu_mem::CostModel::mi300a_no_thp(),
        hsa_rocr::Topology::default(),
    )
    .config(RuntimeConfig::LegacyCopy)
    .threads(omp_offload::replay_threads(ir))
    .sanitize(true)
    .elide(elide)
    .build()?;
    omp_offload::replay(&mut rt, ir)?;
    Ok(rt.finish().ledger.mm_total())
}

/// Table III optimizer delta (`repro --table3 --optimize`): MM overhead of
/// the steady-state captures replayed under Copy data handling before and
/// after whole-program static optimization, next to what plan-mode elision
/// alone recovers. The optimizer subsumes the plan (rule 2 bakes it in) and
/// goes further — dead from-transfer deletion and loop hoisting are
/// rewrites no elision mode can express — so `MM optimized` is never above
/// `MM plan`, and strictly below it wherever those rules fire.
pub fn table3_optimize(cfg: &PaperConfig) -> Result<(Table, Vec<OptimizeRow>), OmpError> {
    let suite: Vec<Box<dyn Workload>> = vec![
        Box::new(QmcPack::nio(NioSize { factor: 2 }).with_steps(cfg.qmc_steps)),
        Box::new(Stream::scaled(cfg.spec_scale.max(0.02))),
        Box::new(MiniCg::scaled(cfg.spec_scale.max(0.02))),
    ];
    let mut t = Table::new(
        "Table III addendum: map-service time recovered by static optimization (Copy replay)",
        &[
            "Workload",
            "MM baseline (us)",
            "MM plan (us)",
            "MM optimized (us)",
            "Beyond plan (us)",
            "Rewrites",
            "Recommended",
        ],
    );
    let mut rows = Vec::new();
    for w in &suite {
        let ir = omp_mapcheck::capture_workload(w.as_ref(), 1)?;
        let opt = omp_mapcheck::optimize(&ir)
            .expect("shipped workloads are well-formed; the optimizer never refuses them");
        let mm_baseline = replay_mm_copy(&ir, ElideMode::Off)?;
        let plan = omp_mapcheck::elision_plan(&ir);
        let mm_plan = replay_mm_copy(&ir, ElideMode::Plan(plan))?;
        let mm_optimized = replay_mm_copy(&opt.ir, ElideMode::Off)?;
        let verified =
            omp_mapcheck::verify_equivalence(&ir, &opt.ir, RuntimeConfig::LegacyCopy)?.holds();
        let row = OptimizeRow {
            workload: w.name(),
            mm_baseline,
            mm_plan,
            mm_optimized,
            hoisted: opt.report.hoisted,
            dead_to: opt.report.dead_to,
            dead_from: opt.report.dead_from,
            updates_dropped: opt.report.updates_dropped,
            recommended: opt.report.recommended(),
            verified,
        };
        t.push_row(vec![
            row.workload.clone(),
            format!("{:.1}", row.mm_baseline.as_micros_f64()),
            format!("{:.1}", row.mm_plan.as_micros_f64()),
            format!("{:.1}", row.mm_optimized.as_micros_f64()),
            format!("{:.1}", row.saved_beyond_plan().as_micros_f64()),
            format!(
                "{}h/{}t/{}f/{}u",
                row.hoisted, row.dead_to, row.dead_from, row.updates_dropped
            ),
            row.recommended
                .map(|c| c.token().to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
        rows.push(row);
    }
    Ok((t, rows))
}

/// Per-site/per-kernel attribution for one (workload, configuration) cell
/// of the profiling pass (`repro --profile`).
#[derive(Debug)]
pub struct ProfileCell {
    /// Configuration profiled.
    pub config: RuntimeConfig,
    /// Workload name.
    pub workload: String,
    /// Attribution folded from the run's telemetry stream — by the
    /// derivability contract, its totals equal the run's ledger exactly.
    pub attribution: AttributionReport,
}

/// Profile the Table III workloads (403.stencil and 452.ep) under every
/// configuration with the telemetry ring on: per-map-site MM charges and
/// per-kernel MI stalls, one cell per (workload, configuration).
pub fn profile_cells(cfg: &PaperConfig) -> Result<Vec<ProfileCell>, OmpError> {
    let exp = ExperimentConfig {
        repeats: 1,
        telemetry: TelemetryMode::ring(),
        ..cfg.exp.clone()
    };
    let suite: Vec<Box<dyn Workload>> = vec![
        Box::new(spec::Stencil::scaled(cfg.spec_scale)),
        Box::new(spec::Ep::scaled(cfg.spec_scale)),
    ];
    let mut out = Vec::new();
    for w in &suite {
        for &config in RuntimeConfig::ALL.iter() {
            let m = measure(w.as_ref(), config, 1, &exp)?;
            let telemetry = m.report.telemetry.as_ref().expect("telemetry ring was on");
            out.push(ProfileCell {
                config,
                workload: w.name(),
                attribution: attribution(telemetry),
            });
        }
    }
    Ok(out)
}

/// CSV of every profiled map site — one row per (workload, configuration,
/// site), sites in attribution order (MM-heaviest first).
pub fn profile_sites_csv(cells: &[ProfileCell]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "workload,config,addr,len,maps,allocs,copies,bytes,elided,\
         mm_alloc_us,mm_copy_us,mm_free_us,mm_prefault_us,mm_map_us,mm_saved_us,mm_total_us\n",
    );
    for c in cells {
        for s in &c.attribution.sites {
            let _ = writeln!(
                out,
                "{},{},0x{:x},{},{},{},{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}",
                c.workload,
                c.config.label(),
                s.range.start.as_u64(),
                s.range.len,
                s.maps,
                s.allocs,
                s.copies,
                s.bytes,
                s.elided,
                s.mm_alloc.as_micros_f64(),
                s.mm_copy.as_micros_f64(),
                s.mm_free.as_micros_f64(),
                s.mm_prefault.as_micros_f64(),
                s.mm_map.as_micros_f64(),
                s.mm_saved.as_micros_f64(),
                s.mm_total().as_micros_f64(),
            );
        }
    }
    out
}

/// CSV of every profiled kernel — one row per (workload, configuration,
/// kernel), kernels in attribution order (fault-stall-heaviest first).
pub fn profile_kernels_csv(cells: &[ProfileCell]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "workload,config,kernel,launches,compute_us,fault_stall_us,tlb_stall_us,\
         replayed_pages,zero_filled_pages\n",
    );
    for c in cells {
        for k in &c.attribution.kernels {
            let _ = writeln!(
                out,
                "{},{},{},{},{:.3},{:.3},{:.3},{},{}",
                c.workload,
                c.config.label(),
                k.name,
                k.launches,
                k.compute.as_micros_f64(),
                k.fault_stall.as_micros_f64(),
                k.tlb_stall.as_micros_f64(),
                k.replayed_pages,
                k.zero_filled_pages,
            );
        }
    }
    out
}

/// Render a complete markdown reproduction report: every table and figure
/// with the measured values, ready to diff against EXPERIMENTS.md.
pub fn markdown_report(cfg: &PaperConfig) -> Result<String, OmpError> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# Reproduction report\n");
    let _ = writeln!(
        out,
        "Generated by `analysis::paper::markdown_report` ({} sizes, threads {:?}, SPECaccel scale {}, {} repeats).\n",
        cfg.sizes.len(),
        cfg.threads,
        cfg.spec_scale,
        cfg.exp.repeats
    );

    let cells = qmc_sweep(cfg)?;
    let _ = writeln!(out, "## QMCPack ratios (Figures 3 and 4)\n");
    let mut header = String::from("| Size |");
    for &t in &cfg.threads {
        header.push_str(&format!(" IZC {t}T | EM {t}T |"));
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "|{}", "---|".repeat(1 + 2 * cfg.threads.len()));
    for &size in &cfg.sizes {
        let mut row = format!("| {} |", size.label());
        for &t in &cfg.threads {
            let cell = cells
                .iter()
                .find(|c| c.size == size && c.threads == t)
                .expect("cell measured");
            row.push_str(&format!(
                " {:.2} | {:.2} |",
                cell.ratio_of(RuntimeConfig::ImplicitZeroCopy),
                cell.ratio_of(RuntimeConfig::EagerMaps)
            ));
        }
        let _ = writeln!(out, "{row}");
    }

    let _ = writeln!(out, "\n## Table I (HSA call statistics)\n");
    let t1 = table1(cfg)?;
    let _ = writeln!(out, "```\n{t1}```");

    let _ = writeln!(out, "\n## Table II (SPECaccel ratios)\n");
    let (t2, max_cov) = table2(cfg)?;
    let _ = writeln!(out, "```\n{t2}```");
    let _ = writeln!(
        out,
        "\nHighest observed CoV: {max_cov:.3} (paper: <= 0.03)."
    );

    let _ = writeln!(out, "\n## Table III (MM/MI overhead orders)\n");
    let t3 = table3(cfg)?;
    let _ = writeln!(out, "```\n{t3}```");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_cells_cover_every_config_with_exact_streams() {
        let mut cfg = PaperConfig::quick();
        cfg.spec_scale = 0.02;
        let cells = profile_cells(&cfg).unwrap();
        assert_eq!(cells.len(), 2 * RuntimeConfig::ALL.len());
        for c in &cells {
            assert_eq!(c.attribution.dropped_events, 0);
            assert!(!c.attribution.kernels.is_empty());
            assert!(!c.attribution.sites.is_empty());
        }
        let sites = profile_sites_csv(&cells);
        assert!(sites.starts_with("workload,config,addr,len,"));
        assert!(sites.lines().count() > cells.len());
        let kernels = profile_kernels_csv(&cells);
        assert!(kernels.starts_with("workload,config,kernel,"));
        assert!(kernels.lines().count() > cells.len());
    }

    #[test]
    fn quick_fig3_has_expected_shape() {
        let cfg = PaperConfig::quick();
        let cells = qmc_sweep(&cfg).unwrap();
        assert_eq!(cells.len(), cfg.sizes.len() * cfg.threads.len());
        let figs = fig3_from_cells(&cells, &cfg);
        assert_eq!(figs.len(), cfg.sizes.len());
        assert_eq!(figs[0].series.len(), 3);
        // Zero-copy wins at S2 in every cell.
        for c in cells.iter().filter(|c| c.size.factor == 2) {
            assert!(c.ratio_of(RuntimeConfig::ImplicitZeroCopy) > 1.0);
        }
    }

    #[test]
    fn quick_table2_has_five_benchmarks() {
        let mut cfg = PaperConfig::quick();
        cfg.exp.repeats = 2;
        let (t, max_cov) = table2(&cfg).unwrap();
        assert_eq!(t.headers.len(), 6);
        assert_eq!(t.rows.len(), 3);
        assert!(max_cov < 0.2, "cov {max_cov}");
    }

    #[test]
    fn quick_table3_has_three_config_rows() {
        let cfg = PaperConfig::quick();
        let t = table3(&cfg).unwrap();
        assert_eq!(t.rows.len(), 3);
        // Copy never pays MI.
        assert_eq!(t.rows[0][2], "O(0)");
        assert_eq!(t.rows[0][4], "O(0)");
        // Eager Maps never pays MI either.
        assert_eq!(t.rows[2][2], "O(0)");
        assert_eq!(t.rows[2][4], "O(0)");
    }

    #[test]
    fn elision_table_reports_strictly_positive_savings() {
        let cfg = PaperConfig::quick();
        let (t, rows) = table3_elision(&cfg).unwrap();
        assert_eq!(t.rows.len(), 3);
        for row in &rows {
            assert!(row.maps_elided > 0, "{}: no maps elided", row.workload);
            assert!(
                row.mm_saved > VirtDuration::ZERO,
                "{}: nothing saved",
                row.workload
            );
            // The accounting identity is exact, not approximate.
            assert_eq!(
                row.mm_unelided - row.mm_elided,
                row.mm_saved,
                "{}: identity broken",
                row.workload
            );
        }
    }

    #[test]
    fn optimize_table_beats_plan_elision_on_stream() {
        let cfg = PaperConfig::quick();
        let (t, rows) = table3_optimize(&cfg).unwrap();
        assert_eq!(t.rows.len(), 3);
        for row in &rows {
            assert!(row.verified, "{}: contract broken", row.workload);
            assert!(
                row.mm_optimized <= row.mm_plan,
                "{}: optimizer must subsume the plan ({:?} vs {:?})",
                row.workload,
                row.mm_optimized,
                row.mm_plan
            );
            assert!(
                row.mm_optimized <= row.mm_baseline,
                "{}: contract mm bound broken",
                row.workload
            );
        }
        // The acceptance bar: at least one shipped workload recovers MM
        // time *beyond* plan elision. Stream's dead from-copies (its host
        // never reads the device results) are invisible to every elision
        // mode but deleted statically.
        let stream = rows
            .iter()
            .find(|r| r.workload.contains("stream"))
            .expect("stream row");
        assert!(stream.dead_from > 0, "{:?}", stream);
        assert!(
            stream.saved_beyond_plan() > VirtDuration::ZERO,
            "stream must beat plan elision: {stream:?}"
        );
    }

    #[test]
    fn markdown_report_contains_all_artifacts() {
        let mut cfg = PaperConfig::quick();
        cfg.exp.repeats = 1;
        cfg.qmc_repeats = 1;
        let report = markdown_report(&cfg).unwrap();
        assert!(report.contains("## QMCPack ratios"));
        assert!(report.contains("## Table I"));
        assert!(report.contains("## Table II"));
        assert!(report.contains("## Table III"));
        assert!(report.contains("hsa_amd_memory_async_copy"));
        assert!(report.contains("| S2 |"));
    }

    #[test]
    fn quick_table1_shows_copy_dominating_call_counts() {
        let cfg = PaperConfig::quick();
        let t = table1(&cfg).unwrap();
        assert_eq!(t.rows.len(), 4);
        // memory_async_copy: Copy calls >> IZC calls (3 from device init).
        let copy_calls: u64 = t.rows[2][2].parse().unwrap();
        let izc_calls: u64 = t.rows[2][3].parse().unwrap();
        assert!(copy_calls > 100 * izc_calls.max(1));
        assert_eq!(izc_calls, 3);
    }
}
