//! Kernel-trace warm-up analysis (paper §V-A.4).
//!
//! The paper compares Implicit Zero-Copy and Eager Maps launch-by-launch:
//! "for the first hundred kernel launches, the difference between the two
//! configurations is in the order of tens of milliseconds. After the
//! initial phase, the difference lowers to milliseconds and lower" — Eager
//! Maps wins the warm-up (no first-touch stalls) but keeps paying prefault
//! syscalls forever. This module reproduces that analysis from the
//! `LIBOMPTARGET_KERNEL_TRACE` analog.

use omp_offload::KernelTraceEntry;
use sim_des::VirtDuration;

/// Cumulative kernel-side time (compute + stalls) after each launch.
pub fn cumulative_kernel_time(trace: &[KernelTraceEntry]) -> Vec<VirtDuration> {
    let mut total = VirtDuration::ZERO;
    trace
        .iter()
        .map(|e| {
            total += e.compute + e.stall;
            total
        })
        .collect()
}

/// Launch-indexed comparison of two traces of the *same program* under two
/// configurations.
#[derive(Debug)]
pub struct WarmupComparison {
    /// Cumulative kernel time of the first trace per launch index.
    pub a: Vec<VirtDuration>,
    /// Cumulative kernel time of the second trace per launch index.
    pub b: Vec<VirtDuration>,
}

impl WarmupComparison {
    /// Compare two traces (truncated to the shorter one).
    pub fn new(a: &[KernelTraceEntry], b: &[KernelTraceEntry]) -> Self {
        let mut ca = cumulative_kernel_time(a);
        let mut cb = cumulative_kernel_time(b);
        let n = ca.len().min(cb.len());
        ca.truncate(n);
        cb.truncate(n);
        WarmupComparison { a: ca, b: cb }
    }

    /// Number of compared launches.
    pub fn launches(&self) -> usize {
        self.a.len()
    }

    /// Signed advantage of `b` over `a` after `launch` launches
    /// (positive: `a` has accumulated more kernel time than `b`).
    pub fn advantage_at(&self, launch: usize) -> i64 {
        self.a[launch].as_nanos() as i64 - self.b[launch].as_nanos() as i64
    }

    /// The launch index after which per-launch differences drop below
    /// `threshold` for good — the end of the warm-up phase. `None` if the
    /// traces never settle.
    pub fn settled_after(&self, threshold: VirtDuration) -> Option<usize> {
        let per_launch_diff = |i: usize| {
            let da = if i == 0 {
                self.a[0]
            } else {
                self.a[i] - self.a[i - 1]
            };
            let db = if i == 0 {
                self.b[0]
            } else {
                self.b[i] - self.b[i - 1]
            };
            da.as_nanos().abs_diff(db.as_nanos())
        };
        let mut settled_from = None;
        for i in 0..self.launches() {
            if per_launch_diff(i) > threshold.as_nanos() {
                settled_from = None;
            } else if settled_from.is_none() {
                settled_from = Some(i);
            }
        }
        settled_from
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn entry(compute_us: u64, stall_us: u64) -> KernelTraceEntry {
        KernelTraceEntry {
            name: Arc::from("k"),
            thread: 0,
            compute: VirtDuration::from_micros(compute_us),
            stall: VirtDuration::from_micros(stall_us),
            faulted_pages: 0,
        }
    }

    #[test]
    fn cumulative_is_monotone_prefix_sum() {
        let trace = vec![entry(10, 5), entry(10, 0), entry(10, 0)];
        let c = cumulative_kernel_time(&trace);
        assert_eq!(
            c,
            vec![
                VirtDuration::from_micros(15),
                VirtDuration::from_micros(25),
                VirtDuration::from_micros(35)
            ]
        );
    }

    #[test]
    fn warmup_advantage_shrinks_once_faults_stop() {
        // "IZC": big stalls on the first 3 launches (first touch), then none.
        let izc: Vec<_> = (0..10)
            .map(|i| entry(10, if i < 3 { 100 } else { 0 }))
            .collect();
        // "EM": no stalls at all.
        let em: Vec<_> = (0..10).map(|_| entry(10, 0)).collect();
        let cmp = WarmupComparison::new(&izc, &em);
        assert_eq!(cmp.launches(), 10);
        // EM is ahead by 300us after warm-up...
        assert_eq!(cmp.advantage_at(9), 300_000);
        // ...and the per-launch difference settles after launch 3.
        assert_eq!(cmp.settled_after(VirtDuration::from_micros(1)), Some(3));
    }

    #[test]
    fn never_settling_is_reported() {
        let a: Vec<_> = (0..5).map(|_| entry(10, 50)).collect();
        let b: Vec<_> = (0..5).map(|_| entry(10, 0)).collect();
        let cmp = WarmupComparison::new(&a, &b);
        assert_eq!(cmp.settled_after(VirtDuration::from_micros(1)), None);
    }

    #[test]
    fn unequal_lengths_truncate() {
        let a: Vec<_> = (0..5).map(|_| entry(1, 0)).collect();
        let b: Vec<_> = (0..3).map(|_| entry(1, 0)).collect();
        let cmp = WarmupComparison::new(&a, &b);
        assert_eq!(cmp.launches(), 3);
        assert_eq!(cmp.advantage_at(2), 0);
    }
}
