//! The experiment driver: run a workload under a configuration N times
//! (recording once, scheduling per seed) and summarize per the paper's
//! methodology — median for ratios, CoV for robustness.

use crate::stats::{cov_duration, median_duration};
use apu_mem::{CostModel, MemOptions};
use hsa_rocr::Topology;
use omp_offload::{ElideMode, OmpError, OmpRuntime, RunReport, RuntimeConfig, TelemetryMode};
use sim_des::{FaultPlan, NoiseModel, RunOptions, VirtDuration};
use workloads::Workload;

/// Shared experiment settings.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Cost model (default: the calibrated MI300A preset).
    pub cost: CostModel,
    /// Socket topology.
    pub topo: Topology,
    /// Repeats per measurement (the paper: 8 for SPECaccel, 4 for QMCPack).
    pub repeats: usize,
    /// Measurement-noise model.
    pub noise: NoiseModel,
    /// Base RNG seed; repeat `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// When set, each run is executed under the deterministic fault plan
    /// derived from this seed ([`FaultPlan::from_seed`]); recovery keeps the
    /// results semantically identical to healthy runs.
    pub fault_seed: Option<u64>,
    /// Memory-subsystem options (pagewise oracle, capacity override).
    /// Binaries translate `ZC_MEM_PAGEWISE` here once, at the edge.
    pub mem_options: MemOptions,
    /// Map-elision mode for every run (`repro --elide` sets Online).
    pub elide: ElideMode,
    /// Telemetry collection for every run (`repro --profile` turns the
    /// ring on; the default `Off` keeps the hot paths event-free).
    pub telemetry: TelemetryMode,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            cost: CostModel::mi300a(),
            topo: Topology::default(),
            repeats: 8,
            noise: NoiseModel::os_interference(),
            base_seed: 0x5EED,
            fault_seed: None,
            mem_options: MemOptions::default(),
            elide: ElideMode::Off,
            telemetry: TelemetryMode::Off,
        }
    }
}

impl ExperimentConfig {
    /// Noise-free single-run settings (deterministic unit tests).
    pub fn noiseless() -> Self {
        ExperimentConfig {
            repeats: 1,
            noise: NoiseModel::NONE,
            ..Default::default()
        }
    }
}

/// Summary of N repeats of one (workload, configuration, threads) cell.
#[derive(Debug)]
pub struct Measurement {
    /// The configuration measured.
    pub config: RuntimeConfig,
    /// Host threads used.
    pub threads: usize,
    /// All makespans (one per repeat).
    pub makespans: Vec<VirtDuration>,
    /// Full report from the first repeat (ledger, API stats, traces).
    pub report: RunReport,
}

impl Measurement {
    /// Median makespan (the paper's ratio basis).
    pub fn median(&self) -> VirtDuration {
        median_duration(&self.makespans)
    }

    /// Coefficient of Variation across repeats.
    pub fn cov(&self) -> f64 {
        cov_duration(&self.makespans)
    }
}

/// Ratio of Copy's median time to this configuration's median time —
/// the paper's headline metric. Ratio > 1 means zero-copy wins.
pub fn ratio(copy: &Measurement, other: &Measurement) -> f64 {
    copy.median().as_nanos() as f64 / other.median().as_nanos() as f64
}

/// Run `workload` under `config` with `threads` host threads, `repeats`
/// times (one recording pass, per-seed scheduling).
pub fn measure(
    workload: &dyn Workload,
    config: RuntimeConfig,
    threads: usize,
    exp: &ExperimentConfig,
) -> Result<Measurement, OmpError> {
    let mut builder = OmpRuntime::builder(exp.cost.clone(), exp.topo)
        .config(config)
        .threads(threads)
        .mem_options(exp.mem_options)
        .elide(exp.elide.clone())
        .telemetry(exp.telemetry);
    if let Some(seed) = exp.fault_seed {
        builder = builder.fault_plan(FaultPlan::from_seed(seed));
    }
    let mut rt = builder.build()?;
    workload.run(&mut rt)?;
    let opts = RunOptions::with_noise(exp.noise, exp.base_seed);
    let seeds: Vec<u64> = (0..exp.repeats as u64).map(|i| exp.base_seed + i).collect();
    let (report, makespans) = rt.finish_replicated(&opts, &seeds);
    Ok(Measurement {
        config,
        threads,
        makespans,
        report,
    })
}

/// Measure all four configurations for one (workload, threads) cell.
/// Returns them in `RuntimeConfig::ALL` order (Copy first).
pub fn measure_all_configs(
    workload: &dyn Workload,
    threads: usize,
    exp: &ExperimentConfig,
) -> Result<Vec<Measurement>, OmpError> {
    RuntimeConfig::ALL
        .iter()
        .map(|&c| measure(workload, c, threads, exp))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::spec::Ep;

    #[test]
    fn measurement_summaries_behave() {
        let exp = ExperimentConfig {
            repeats: 4,
            ..ExperimentConfig::default()
        };
        let m = measure(&Ep::scaled(0.02), RuntimeConfig::LegacyCopy, 1, &exp).unwrap();
        assert_eq!(m.makespans.len(), 4);
        assert!(m.median() > VirtDuration::ZERO);
        // Quiet-node jitter: small but nonzero CoV.
        assert!(m.cov() > 0.0 && m.cov() < 0.1, "cov = {}", m.cov());
    }

    #[test]
    fn noiseless_runs_are_identical() {
        let exp = ExperimentConfig {
            repeats: 3,
            noise: NoiseModel::NONE,
            ..ExperimentConfig::default()
        };
        let m = measure(&Ep::scaled(0.02), RuntimeConfig::ImplicitZeroCopy, 1, &exp).unwrap();
        assert_eq!(m.cov(), 0.0);
        assert!(m.makespans.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn faulted_runs_are_deterministic_and_equivalent() {
        let healthy = ExperimentConfig::noiseless();
        let faulty = ExperimentConfig {
            fault_seed: Some(0xF00D),
            ..ExperimentConfig::noiseless()
        };
        let w = Ep::scaled(0.02);
        let h = measure(&w, RuntimeConfig::LegacyCopy, 1, &healthy).unwrap();
        let f1 = measure(&w, RuntimeConfig::LegacyCopy, 1, &faulty).unwrap();
        let f2 = measure(&w, RuntimeConfig::LegacyCopy, 1, &faulty).unwrap();
        // Same fault seed => bit-identical replay.
        assert_eq!(f1.makespans, f2.makespans);
        assert_eq!(
            f1.report.fault_stats.total_injected(),
            f2.report.fault_stats.total_injected()
        );
        // Recovery keeps the functional work identical to a healthy run.
        assert_eq!(h.report.fault_stats.total_injected(), 0);
        assert_eq!(f1.report.ledger.kernels, h.report.ledger.kernels);
        assert_eq!(f1.report.ledger.bytes_copied, h.report.ledger.bytes_copied);
    }

    #[test]
    fn ratio_direction() {
        let exp = ExperimentConfig::noiseless();
        let all = measure_all_configs(&Ep::scaled(0.05), 1, &exp).unwrap();
        let copy = &all[0];
        let izc = all
            .iter()
            .find(|m| m.config == RuntimeConfig::ImplicitZeroCopy)
            .unwrap();
        // ep: zero-copy loses => ratio < 1.
        assert!(ratio(copy, izc) < 1.0);
        // Ratio of Copy against itself is exactly 1.
        assert_eq!(ratio(copy, copy), 1.0);
    }
}
