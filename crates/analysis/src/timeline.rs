//! Chrome-trace (`chrome://tracing` / Perfetto) export of a schedule.
//!
//! Writes the resolved virtual-time schedule as a Trace Event Format JSON
//! array — one duration event per operation, one row per simulated host
//! thread — so a run can be inspected visually the way rocprof timelines
//! are. The writer is hand-rolled (no serde): the format is a flat array of
//! objects with a handful of numeric/string fields.

use hsa_rocr::HsaApiKind;
use omp_offload::telemetry::{resolve, FieldVal, TelemetryReport};
use sim_des::{Schedule, Tag};
use std::fmt::Write as _;

/// Escape a JSON string value (the names we emit are ASCII identifiers,
/// but stay safe anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn event_name(tag: Tag) -> String {
    match HsaApiKind::from_tag(tag) {
        Some(kind) => kind.symbol().to_string(),
        None if tag == Tag::UNTAGGED => "host".to_string(),
        None => format!("tag{}", tag.0),
    }
}

/// Render `schedule` as Trace Event Format JSON.
///
/// Timestamps are microseconds of virtual time; `pid` is 1; `tid` is the
/// simulated host-thread index. Zero-length operations are skipped (the
/// viewer cannot display them).
pub fn chrome_trace(schedule: &Schedule) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for r in schedule.records() {
        let dur_us = r.latency().as_nanos() as f64 / 1000.0;
        if dur_us <= 0.0 {
            continue;
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ts_us = r.start.as_nanos() as f64 / 1000.0;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
            json_escape(&event_name(r.tag)),
            r.thread,
            ts_us,
            dur_us
        );
    }
    out.push_str("\n]\n");
    out
}

/// Append one schedule record as a Trace Event object under `pid`.
fn push_schedule_event(out: &mut String, r: &sim_des::OpRecord, pid: u32, first: &mut bool) {
    let dur_us = r.latency().as_nanos() as f64 / 1000.0;
    if dur_us <= 0.0 {
        return;
    }
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let ts_us = r.start.as_nanos() as f64 / 1000.0;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
        json_escape(&event_name(r.tag)),
        pid,
        r.thread,
        ts_us,
        dur_us
    );
}

/// Render a telemetry event's payload fields as a Trace Event `args`
/// object (shown in the Perfetto detail pane).
fn args_json(fields: &[(&'static str, FieldVal)]) -> String {
    let mut out = String::from("{");
    for (i, (key, val)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match val {
            FieldVal::U64(v) => {
                let _ = write!(out, "\"{key}\":{v}");
            }
            FieldVal::Str(s) => {
                let _ = write!(out, "\"{key}\":\"{}\"", json_escape(s));
            }
            FieldVal::Bool(b) => {
                let _ = write!(out, "\"{key}\":{b}");
            }
        }
    }
    out.push('}');
    out
}

/// Render the schedule and the telemetry stream as one merged Chrome/Perfetto
/// trace on a single virtual clock: the HSA schedule's per-thread op rows
/// under process 1, the runtime's attributed spans (maps, copies, prefaults,
/// kernels, recovery episodes) under process 2. Telemetry anchors are
/// resolved against the same schedule that produced the HSA rows
/// ([`omp_offload::telemetry::resolve`]), so a runtime span visually covers
/// exactly the HSA operations it charged for.
///
/// The output is the Trace Event Format *object* form; `otherData` is the
/// sink header and always carries `dropped_events` — a nonzero value means
/// the ring overflowed and the span set is a suffix of the run.
pub fn merged_chrome_trace(schedule: &Schedule, telemetry: &TelemetryReport) -> String {
    let mut out = String::from("{\n\"traceEvents\":[\n");
    let mut first = true;
    for name in ["HSA schedule", "runtime telemetry"] {
        let pid = if name.starts_with("HSA") { 1 } else { 2 };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{name}\"}}}}",
        );
    }
    for r in schedule.records() {
        push_schedule_event(&mut out, r, 1, &mut first);
    }
    for t in resolve(telemetry, schedule) {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let name = json_escape(t.event.kind.name());
        let args = args_json(&t.event.kind.fields());
        let ts_us = t.start.as_nanos() as f64 / 1000.0;
        let dur_us = (t.end - t.start).as_nanos() as f64 / 1000.0;
        if dur_us > 0.0 {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":2,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{}}}",
                name, t.event.thread, ts_us, dur_us, args
            );
        } else {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"i\",\"pid\":2,\"tid\":{},\"ts\":{:.3},\"s\":\"t\",\"args\":{}}}",
                name, t.event.thread, ts_us, args
            );
        }
    }
    let _ = write!(
        out,
        "\n],\n\"otherData\":{{\"telemetry_events\":{},\"dropped_events\":{},\"capacity\":{}}}\n}}\n",
        telemetry.events.len(),
        telemetry.dropped_events,
        telemetry.capacity
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_des::{schedule, Machine, Op, OpStreams, RunOptions, VirtDuration};

    fn sample_schedule() -> Schedule {
        let mut m = Machine::new();
        let r = m.add_resource("gpu", 1);
        let mut s = OpStreams::new(2);
        s.push(
            0,
            Op::service(
                HsaApiKind::KernelDispatch.tag(),
                r,
                VirtDuration::from_micros(5),
            ),
        );
        s.push(1, Op::local(Tag::UNTAGGED, VirtDuration::from_micros(3)));
        s.push(0, Op::local(Tag::UNTAGGED, VirtDuration::ZERO)); // skipped
        schedule(m, s, &RunOptions::noiseless())
    }

    #[test]
    fn trace_is_valid_shape_and_skips_zero_length() {
        let json = chrome_trace(&sample_schedule());
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        // Two nonzero events.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("hsa_queue_dispatch"));
        assert!(json.contains("\"name\":\"host\""));
        assert!(json.contains("\"tid\":1"));
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    fn empty_schedule() -> Schedule {
        schedule(Machine::new(), OpStreams::new(1), &RunOptions::noiseless())
    }

    #[test]
    fn chrome_trace_of_empty_schedule_is_a_valid_empty_array() {
        let json = chrome_trace(&empty_schedule());
        assert_eq!(json, "[\n\n]\n");
    }

    #[test]
    fn merged_trace_on_empty_schedule_and_stream_is_header_only() {
        let empty = omp_offload::telemetry::TelemetryReport {
            events: Vec::new(),
            dropped_events: 0,
            capacity: 16,
        };
        let json = merged_chrome_trace(&empty_schedule(), &empty);
        assert!(json.contains("\"traceEvents\""));
        // Only the two process_name metadata records, no spans.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2);
        assert!(!json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dropped_events\":0"));
        assert!(json.contains("\"capacity\":16"));
    }

    #[test]
    fn merged_trace_covers_a_zero_kernel_run() {
        use apu_mem::{AddrRange, CostModel};
        use hsa_rocr::Topology;
        use omp_offload::{MapEntry, OmpRuntime, RuntimeConfig, TelemetryMode};

        // Map traffic but no kernel launches: the merged trace must still
        // carry the runtime rows and never emit a kernel event.
        let mut rt = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
            .config(RuntimeConfig::LegacyCopy)
            .telemetry(TelemetryMode::ring())
            .build()
            .unwrap();
        let a = rt.host_alloc(0, 1 << 16).unwrap();
        let e = MapEntry::tofrom(AddrRange::new(a, 1 << 16));
        rt.target_enter_data(0, &[e]).unwrap();
        rt.target_exit_data(0, &[e], false).unwrap();
        let report = rt.finish();
        let telemetry = report.telemetry.as_ref().unwrap();
        let json = merged_chrome_trace(&report.schedule, telemetry);
        assert!(json.contains("\"name\":\"map_begin\""));
        assert!(json.contains("\"name\":\"copy\""));
        assert!(json.contains("\"pid\":2"));
        assert!(!json.contains("kernel_launch"));
        assert!(!json.contains("kernel_complete"));
        assert!(json.contains("\"dropped_events\":0"));
    }

    #[test]
    fn merged_trace_interleaves_schedule_and_telemetry_processes() {
        use apu_mem::{AddrRange, CostModel};
        use hsa_rocr::Topology;
        use omp_offload::{MapEntry, OmpRuntime, RuntimeConfig, TargetRegion, TelemetryMode};

        let mut rt = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
            .config(RuntimeConfig::LegacyCopy)
            .telemetry(TelemetryMode::ring())
            .build()
            .unwrap();
        let a = rt.host_alloc(0, 1 << 16).unwrap();
        rt.target(
            0,
            TargetRegion::new("saxpy", VirtDuration::from_micros(50))
                .map(MapEntry::tofrom(AddrRange::new(a, 1 << 16))),
        )
        .unwrap();
        let report = rt.finish();
        let json = merged_chrome_trace(&report.schedule, report.telemetry.as_ref().unwrap());
        // Both processes present and named.
        assert!(json.contains("\"name\":\"HSA schedule\""));
        assert!(json.contains("\"name\":\"runtime telemetry\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"pid\":2"));
        // The kernel appears on both clocks: the HSA dispatch op and the
        // runtime's attributed completion span.
        assert!(json.contains("hsa_queue_dispatch"));
        assert!(json.contains("\"name\":\"kernel_complete\""));
        assert!(json.contains("\"name\":\"saxpy\""));
    }
}
