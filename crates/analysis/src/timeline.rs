//! Chrome-trace (`chrome://tracing` / Perfetto) export of a schedule.
//!
//! Writes the resolved virtual-time schedule as a Trace Event Format JSON
//! array — one duration event per operation, one row per simulated host
//! thread — so a run can be inspected visually the way rocprof timelines
//! are. The writer is hand-rolled (no serde): the format is a flat array of
//! objects with a handful of numeric/string fields.

use hsa_rocr::HsaApiKind;
use sim_des::{Schedule, Tag};
use std::fmt::Write as _;

/// Escape a JSON string value (the names we emit are ASCII identifiers,
/// but stay safe anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn event_name(tag: Tag) -> String {
    match HsaApiKind::from_tag(tag) {
        Some(kind) => kind.symbol().to_string(),
        None if tag == Tag::UNTAGGED => "host".to_string(),
        None => format!("tag{}", tag.0),
    }
}

/// Render `schedule` as Trace Event Format JSON.
///
/// Timestamps are microseconds of virtual time; `pid` is 1; `tid` is the
/// simulated host-thread index. Zero-length operations are skipped (the
/// viewer cannot display them).
pub fn chrome_trace(schedule: &Schedule) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for r in schedule.records() {
        let dur_us = r.latency().as_nanos() as f64 / 1000.0;
        if dur_us <= 0.0 {
            continue;
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ts_us = r.start.as_nanos() as f64 / 1000.0;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
            json_escape(&event_name(r.tag)),
            r.thread,
            ts_us,
            dur_us
        );
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_des::{schedule, Machine, Op, OpStreams, RunOptions, VirtDuration};

    fn sample_schedule() -> Schedule {
        let mut m = Machine::new();
        let r = m.add_resource("gpu", 1);
        let mut s = OpStreams::new(2);
        s.push(
            0,
            Op::service(
                HsaApiKind::KernelDispatch.tag(),
                r,
                VirtDuration::from_micros(5),
            ),
        );
        s.push(1, Op::local(Tag::UNTAGGED, VirtDuration::from_micros(3)));
        s.push(0, Op::local(Tag::UNTAGGED, VirtDuration::ZERO)); // skipped
        schedule(m, s, &RunOptions::noiseless())
    }

    #[test]
    fn trace_is_valid_shape_and_skips_zero_length() {
        let json = chrome_trace(&sample_schedule());
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        // Two nonzero events.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("hsa_queue_dispatch"));
        assert!(json.contains("\"name\":\"host\""));
        assert!(json.contains("\"tid\":1"));
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}
