//! # analysis — experiment driver, statistics, tables and figures
//!
//! Turns workload runs into the paper's artifacts: medians and CoV per the
//! paper's methodology, Copy/zero-copy ratio computation, aligned text
//! tables and ASCII line figures with CSV export, builders for every
//! table and figure in the evaluation section ([`paper`]), launch-indexed
//! warm-up comparison ([`warmup`], paper §V-A.4), and Chrome-trace timeline
//! export of schedules ([`timeline`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiment;
mod figure;
pub mod kernels;
pub mod paper;
mod stats;
mod table;
pub mod timeline;
pub mod warmup;

pub use experiment::{measure, measure_all_configs, ratio, ExperimentConfig, Measurement};
pub use figure::{Figure, Series};
pub use stats::{cov, cov_duration, mean, median, median_duration, order_of_magnitude_us, stddev};
pub use table::Table;
