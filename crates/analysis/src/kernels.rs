//! Per-kernel statistics from the kernel trace (rocprof kernel-view
//! analog), backing the paper's §V-A.3 scaling analysis: "Total kernel
//! execution times reported by rocprof for Copy and Implicit Zero-Copy
//! configurations increases 10 times between S2 and S24. Total HSA call
//! execution time increases 5X for Copy..." — kernel time grows with the
//! problem size roughly twice as fast as Copy's transfer overheads.

use omp_offload::KernelTraceEntry;
use sim_des::VirtDuration;
use std::collections::BTreeMap;

/// Aggregate statistics for one kernel name.
#[derive(Debug, Clone, Default)]
pub struct KernelStats {
    /// Launches.
    pub launches: u64,
    /// Total modeled compute time.
    pub total_compute: VirtDuration,
    /// Total fault/TLB stall attributed to this kernel.
    pub total_stall: VirtDuration,
    /// Total pages faulted by this kernel's launches.
    pub faulted_pages: u64,
}

impl KernelStats {
    /// Mean compute time per launch.
    pub fn mean_compute(&self) -> VirtDuration {
        if self.launches == 0 {
            VirtDuration::ZERO
        } else {
            self.total_compute / self.launches
        }
    }
}

/// Aggregate a kernel trace by kernel name (sorted for stable output).
pub fn by_kernel(trace: &[KernelTraceEntry]) -> BTreeMap<String, KernelStats> {
    let mut out: BTreeMap<String, KernelStats> = BTreeMap::new();
    for e in trace {
        let s = out.entry(e.name.to_string()).or_default();
        s.launches += 1;
        s.total_compute += e.compute;
        s.total_stall += e.stall;
        s.faulted_pages += e.faulted_pages;
    }
    out
}

/// Total kernel-side time (compute + stalls) in a trace.
pub fn total_kernel_time(trace: &[KernelTraceEntry]) -> VirtDuration {
    trace.iter().map(|e| e.compute + e.stall).sum()
}

/// Render the per-kernel aggregation as an aligned table.
pub fn kernel_table(trace: &[KernelTraceEntry]) -> crate::Table {
    let mut t = crate::Table::new(
        "Per-kernel statistics (kernel trace)",
        &[
            "kernel",
            "launches",
            "total compute",
            "mean",
            "stall",
            "faulted pages",
        ],
    );
    for (name, s) in by_kernel(trace) {
        t.push_row(vec![
            name,
            s.launches.to_string(),
            s.total_compute.to_string(),
            s.mean_compute().to_string(),
            s.total_stall.to_string(),
            s.faulted_pages.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn entry(name: &str, compute_us: u64, stall_us: u64, pages: u64) -> KernelTraceEntry {
        KernelTraceEntry {
            name: Arc::from(name),
            thread: 0,
            compute: VirtDuration::from_micros(compute_us),
            stall: VirtDuration::from_micros(stall_us),
            faulted_pages: pages,
        }
    }

    #[test]
    fn aggregation_by_name() {
        let trace = vec![
            entry("a", 10, 5, 2),
            entry("b", 20, 0, 0),
            entry("a", 30, 0, 0),
        ];
        let agg = by_kernel(&trace);
        assert_eq!(agg.len(), 2);
        let a = &agg["a"];
        assert_eq!(a.launches, 2);
        assert_eq!(a.total_compute, VirtDuration::from_micros(40));
        assert_eq!(a.mean_compute(), VirtDuration::from_micros(20));
        assert_eq!(a.total_stall, VirtDuration::from_micros(5));
        assert_eq!(a.faulted_pages, 2);
        assert_eq!(total_kernel_time(&trace), VirtDuration::from_micros(65));
    }

    #[test]
    fn table_renders_sorted_rows() {
        let trace = vec![entry("zeta", 1, 0, 0), entry("alpha", 1, 0, 0)];
        let t = kernel_table(&trace);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "alpha");
        assert_eq!(t.rows[1][0], "zeta");
    }

    #[test]
    fn empty_trace_is_fine() {
        assert!(by_kernel(&[]).is_empty());
        assert_eq!(total_kernel_time(&[]), VirtDuration::ZERO);
        assert_eq!(kernel_table(&[]).rows.len(), 0);
    }
}
