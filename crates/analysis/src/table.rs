//! Plain-text tables with aligned columns and CSV export.

use std::fmt;

/// A rendered result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Caption printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// CSV rendering (quotes cells containing commas or quotes).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "{}", self.title)?;
        let line: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "=".repeat(line.max(self.title.len())))?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (cell, w) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
                first = false;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        writeln!(f, "{}", "-".repeat(line.max(self.title.len())))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Ratios", &["Benchmark", "Implicit Z-C", "Eager Maps"]);
        t.push_row(vec!["stencil".into(), "0.99".into(), "0.98".into()]);
        t.push_row(vec!["spC".into(), "7.80".into(), "8.10".into()]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let text = sample().to_string();
        assert!(text.contains("Ratios"));
        assert!(text.contains("Benchmark"));
        let lines: Vec<&str> = text.lines().collect();
        // Header and data rows share the separator positions.
        let hpos = lines[2].find('|').unwrap();
        let rpos = lines[4].find('|').unwrap();
        assert_eq!(hpos, rpos);
    }

    #[test]
    fn csv_escapes_properly() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["plain".into(), "with,comma".into()]);
        t.push_row(vec!["with\"quote".into(), "ok".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
