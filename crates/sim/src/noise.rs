//! Deterministic measurement-noise model.
//!
//! Real measurements on the paper's testbed exhibit run-to-run variation
//! (reported as Coefficient of Variation), including rare large outliers
//! attributed to operating-system interference on the Eager Maps prefault
//! syscall path. Virtual time is deterministic, so to reproduce the paper's
//! statistical-robustness analysis we perturb segment durations with a
//! *seeded* jitter: same seed, same "measurement".
//!
//! The generator is an embedded SplitMix64 so this crate stays
//! dependency-free; workload-level randomness uses the `rand` crate.

/// SplitMix64: tiny, high-quality, deterministic PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new instance.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Configuration of the jitter applied to service durations.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// Relative half-width of the uniform jitter band: durations are scaled
    /// by a factor uniform in `[1 - rel_jitter, 1 + rel_jitter]`.
    pub rel_jitter: f64,
    /// Probability that a *syscall-class* segment suffers an OS-interference
    /// outlier (the paper observed one Eager Maps data point an order of
    /// magnitude larger than the rest, CoV 4.2).
    pub outlier_prob: f64,
    /// Multiplier applied to a segment hit by an outlier.
    pub outlier_scale: f64,
}

impl NoiseModel {
    /// No perturbation at all.
    pub const NONE: NoiseModel = NoiseModel {
        rel_jitter: 0.0,
        outlier_prob: 0.0,
        outlier_scale: 1.0,
    };

    /// Mild jitter resembling a quiet HPC node.
    pub fn quiet_node() -> Self {
        NoiseModel {
            rel_jitter: 0.02,
            outlier_prob: 0.0,
            outlier_scale: 1.0,
        }
    }

    /// Jitter plus rare large OS-interference outliers on syscalls.
    pub fn os_interference() -> Self {
        NoiseModel {
            rel_jitter: 0.02,
            outlier_prob: 1e-6,
            outlier_scale: 5_000.0,
        }
    }

    /// True when this model applies no perturbation.
    pub fn is_none(&self) -> bool {
        self.rel_jitter == 0.0 && self.outlier_prob == 0.0
    }

    /// Jitter factor for an ordinary segment.
    #[inline]
    pub fn factor(&self, rng: &mut SplitMix64) -> f64 {
        if self.rel_jitter == 0.0 {
            return 1.0;
        }
        1.0 + self.rel_jitter * (2.0 * rng.next_f64() - 1.0)
    }

    /// Jitter factor for a syscall-class segment (may be an outlier).
    #[inline]
    pub fn syscall_factor(&self, rng: &mut SplitMix64) -> f64 {
        let base = self.factor(rng);
        if self.outlier_prob > 0.0 && rng.next_f64() < self.outlier_prob {
            base * self.outlier_scale
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn none_model_is_identity() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(NoiseModel::NONE.factor(&mut rng), 1.0);
        assert_eq!(NoiseModel::NONE.syscall_factor(&mut rng), 1.0);
        assert!(NoiseModel::NONE.is_none());
    }

    #[test]
    fn jitter_stays_in_band() {
        let m = NoiseModel::quiet_node();
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            let f = m.factor(&mut rng);
            assert!((1.0 - m.rel_jitter..=1.0 + m.rel_jitter).contains(&f));
        }
    }

    #[test]
    fn outliers_eventually_fire() {
        let m = NoiseModel {
            rel_jitter: 0.0,
            outlier_prob: 0.01,
            outlier_scale: 100.0,
        };
        let mut rng = SplitMix64::new(9);
        let mut hit = false;
        for _ in 0..10_000 {
            if m.syscall_factor(&mut rng) > 10.0 {
                hit = true;
                break;
            }
        }
        assert!(hit, "expected at least one outlier in 10k draws at p=0.01");
    }
}
