//! Deterministic fault-injection plans.
//!
//! Real MI300A deployments do not always present the happy path the rest of
//! this simulator models: pool allocations fail under VRAM pressure, SDMA
//! engines return transient errors, the compute queue backs up, and XNACK
//! may be unavailable at boot (`HSA_XNACK=0`) or effectively lost mid-run
//! when an administrator flips the deployment mode. A [`FaultPlan`] is a
//! *seeded* schedule of such failures: higher layers consult it at each
//! injection point (pool allocate, async copy submit, kernel dispatch) and
//! the plan answers, deterministically, whether that particular call fails.
//!
//! ## Determinism
//!
//! The record phase of a run is single-threaded per runtime, so injection
//! points are consulted in a fixed order. Each fault site draws from its own
//! [`SplitMix64`] stream (derived from the plan seed and the site
//! discriminant), which makes the answer at one site independent of how
//! often the other sites are consulted. Two runs with the same seed and the
//! same workload therefore observe byte-identical fault schedules.
//!
//! ## Bounded bursts
//!
//! Transient faults fire in *bursts*: when a site triggers, the next draw(s)
//! at that site also fail, up to `max_burst` consecutive failures, and the
//! consultation immediately after an episode is guaranteed to succeed.
//! Keeping `max_burst` strictly below a recovery policy's retry budget
//! therefore guarantees that bounded retry always eventually succeeds, which
//! is what lets the soak tests assert semantic equivalence between faulty
//! and healthy runs.

use crate::noise::SplitMix64;
use crate::time::VirtDuration;

/// The kinds of failure a plan can inject, one per modeled layer boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `memory_pool_allocate` returns a transient driver/fragmentation
    /// failure (distinct from a genuine capacity `OutOfMemory`).
    PoolAllocFail,
    /// The SDMA engine rejects or corrupts an async copy submission; the
    /// copy has no effect and must be resubmitted.
    DmaError,
    /// The GPU compute (AQL) queue is full; the dispatch packet cannot be
    /// enqueued until earlier work drains.
    QueueFull,
    /// XNACK demand-paging capability is lost (at startup: unavailable
    /// deployment; mid-run: administrative mode flip). Not a per-call
    /// fault — see [`FaultPlan::xnack_unavailable`] and
    /// [`FaultPlan::xnack_flip_due`].
    XnackLost,
}

impl FaultKind {
    /// All per-call (transient) fault sites, in discriminant order.
    pub const TRANSIENT: [FaultKind; 3] = [
        FaultKind::PoolAllocFail,
        FaultKind::DmaError,
        FaultKind::QueueFull,
    ];

    /// Stable short label for ledgers and traces.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::PoolAllocFail => "pool_alloc_fail",
            FaultKind::DmaError => "dma_error",
            FaultKind::QueueFull => "queue_full",
            FaultKind::XnackLost => "xnack_lost",
        }
    }

    fn site_index(self) -> usize {
        match self {
            FaultKind::PoolAllocFail => 0,
            FaultKind::DmaError => 1,
            FaultKind::QueueFull => 2,
            FaultKind::XnackLost => 3,
        }
    }
}

/// Per-site probabilities and burst bound for a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability that a pool allocation fails transiently.
    pub pool_alloc_fail: f64,
    /// Probability that an async-copy submission fails.
    pub dma_error: f64,
    /// Probability that a kernel dispatch hits a full queue.
    pub queue_full: f64,
    /// Maximum *consecutive* failures per episode (>= 1). Recovery retry
    /// budgets must exceed this for recovery to be guaranteed.
    pub max_burst: u32,
    /// Whether XNACK is unavailable from the start of the run.
    pub xnack_unavailable: bool,
    /// If set, XNACK capability is lost after this many kernel dispatches.
    pub xnack_flip_after_kernels: Option<u64>,
}

impl FaultSpec {
    /// A plan that never fires; useful as a neutral element in tests.
    pub fn none() -> Self {
        FaultSpec {
            pool_alloc_fail: 0.0,
            dma_error: 0.0,
            queue_full: 0.0,
            max_burst: 1,
            xnack_unavailable: false,
            xnack_flip_after_kernels: None,
        }
    }

    /// Aggressive transient rates for soak testing: every site fires often,
    /// but bursts stay within the default recovery budget.
    pub fn soak() -> Self {
        FaultSpec {
            pool_alloc_fail: 0.20,
            dma_error: 0.15,
            queue_full: 0.10,
            max_burst: 2,
            xnack_unavailable: false,
            xnack_flip_after_kernels: None,
        }
    }

    fn probability(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::PoolAllocFail => self.pool_alloc_fail,
            FaultKind::DmaError => self.dma_error,
            FaultKind::QueueFull => self.queue_full,
            FaultKind::XnackLost => 0.0,
        }
    }
}

/// Counters of what a plan actually injected, for reports and replay checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Injected transient pool-allocation failures.
    pub pool_alloc_failures: u64,
    /// Injected DMA submission errors.
    pub dma_errors: u64,
    /// Injected queue-full dispatch rejections.
    pub queue_full: u64,
    /// 1 when a mid-run XNACK flip fired.
    pub xnack_flips: u64,
    /// Distinct failure episodes (bursts), across all transient sites.
    pub episodes: u64,
}

impl FaultStats {
    /// Total injected per-call failures.
    pub fn total_injected(&self) -> u64 {
        self.pool_alloc_failures + self.dma_errors + self.queue_full
    }
}

#[derive(Debug, Clone)]
struct Site {
    rng: SplitMix64,
    probability: f64,
    burst_left: u32,
    // The consultation right after an episode always succeeds; without this
    // cooldown two adjacent episodes could chain into a run longer than
    // `max_burst`, voiding the bounded-retry guarantee.
    cooldown: bool,
}

/// A seeded, deterministic schedule of injected failures.
///
/// Attach one to a run (via the runtime builder) and the HSA layer consults
/// it at each injection point. Cloning a plan clones its full PRNG state;
/// to replay a schedule, construct a fresh plan from the same seed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
    sites: [Site; 3],
    xnack_unavailable: bool,
    xnack_flip_after: Option<u64>,
    xnack_flip_fired: bool,
    stats: FaultStats,
}

impl FaultPlan {
    /// Build a plan with explicit per-site rates.
    pub fn new(seed: u64, spec: FaultSpec) -> Self {
        assert!(spec.max_burst >= 1, "max_burst must be >= 1");
        let site = |kind: FaultKind| Site {
            // Mix the site discriminant into the stream seed so each site
            // draws independently of how often the others are consulted.
            rng: SplitMix64::new(
                seed ^ (0xFA17_0000_0000_0000u64).wrapping_add(kind.site_index() as u64),
            ),
            probability: spec.probability(kind),
            burst_left: 0,
            cooldown: false,
        };
        FaultPlan {
            seed,
            spec,
            sites: [
                site(FaultKind::PoolAllocFail),
                site(FaultKind::DmaError),
                site(FaultKind::QueueFull),
            ],
            xnack_unavailable: spec.xnack_unavailable,
            xnack_flip_after: spec.xnack_flip_after_kernels,
            xnack_flip_fired: false,
            stats: FaultStats::default(),
        }
    }

    /// Derive a complete fault schedule from a single seed — the form the
    /// `repro --faults <seed>` flag uses. Transient rates are drawn in
    /// moderate bands and roughly half of all seeds schedule a mid-run
    /// XNACK flip. Startup XNACK-unavailability is *not* derived here (it
    /// is a deployment property; see [`FaultPlan::with_xnack_unavailable`])
    /// so that a seeded repro run never turns into an unsupported
    /// deployment.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x5EED_FA17);
        let spec = FaultSpec {
            pool_alloc_fail: 0.02 + 0.08 * rng.next_f64(),
            dma_error: 0.02 + 0.06 * rng.next_f64(),
            queue_full: 0.01 + 0.05 * rng.next_f64(),
            max_burst: 2,
            xnack_unavailable: false,
            xnack_flip_after_kernels: if rng.next_f64() < 0.5 {
                Some(1 + rng.next_u64() % 16)
            } else {
                None
            },
        };
        FaultPlan::new(seed, spec)
    }

    /// The seed the plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The spec the plan was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Mark XNACK as unavailable from startup (deployment-level fault).
    pub fn with_xnack_unavailable(mut self, unavailable: bool) -> Self {
        self.xnack_unavailable = unavailable;
        self
    }

    /// Schedule a mid-run XNACK flip after `kernels` dispatches.
    pub fn with_xnack_flip_after(mut self, kernels: u64) -> Self {
        self.xnack_flip_after = Some(kernels);
        self
    }

    /// True when the deployment lacks XNACK from the start.
    pub fn xnack_unavailable(&self) -> bool {
        self.xnack_unavailable
    }

    /// The scheduled mid-run XNACK flip, if any (kernel-dispatch count).
    pub fn xnack_flip_after(&self) -> Option<u64> {
        self.xnack_flip_after
    }

    /// Consult the plan at a transient fault site: should *this* call fail?
    ///
    /// Draws one value from the site's stream per consultation; a triggered
    /// episode fails up to `max_burst` consecutive calls at that site.
    pub fn should_fail(&mut self, kind: FaultKind) -> bool {
        let idx = kind.site_index();
        assert!(idx < self.sites.len(), "not a transient fault site");
        let site = &mut self.sites[idx];
        let fail = if site.burst_left > 0 {
            site.burst_left -= 1;
            site.cooldown = site.burst_left == 0;
            true
        } else if site.cooldown {
            site.cooldown = false;
            false
        } else if site.probability > 0.0 && site.rng.next_f64() < site.probability {
            // New episode: this call fails, plus 0..max_burst-1 follow-ups.
            site.burst_left = (site.rng.next_u64() % self.spec.max_burst as u64) as u32;
            site.cooldown = site.burst_left == 0;
            self.stats.episodes += 1;
            true
        } else {
            false
        };
        if fail {
            match kind {
                FaultKind::PoolAllocFail => self.stats.pool_alloc_failures += 1,
                FaultKind::DmaError => self.stats.dma_errors += 1,
                FaultKind::QueueFull => self.stats.queue_full += 1,
                FaultKind::XnackLost => {}
            }
        }
        fail
    }

    /// Consult the plan's mid-run XNACK flip: returns `true` exactly once,
    /// on the first call where `kernels_dispatched` reaches the scheduled
    /// flip point.
    pub fn xnack_flip_due(&mut self, kernels_dispatched: u64) -> bool {
        match self.xnack_flip_after {
            Some(after) if !self.xnack_flip_fired && kernels_dispatched >= after => {
                self.xnack_flip_fired = true;
                self.stats.xnack_flips += 1;
                true
            }
            _ => false,
        }
    }

    /// What the plan has injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// Exponential backoff schedule, charged in virtual time between recovery
/// retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base: VirtDuration,
    /// Multiplier applied per subsequent retry.
    pub factor: u32,
    /// Upper bound on any single delay.
    pub max: VirtDuration,
}

impl Backoff {
    /// Default schedule: 10µs, doubling, capped at 1ms.
    pub fn default_policy() -> Self {
        Backoff {
            base: VirtDuration::from_micros(10),
            factor: 2,
            max: VirtDuration::from_millis(1),
        }
    }

    /// Delay charged before retry number `attempt` (0-based: the delay
    /// after the first failure is `delay(0) == base`).
    pub fn delay(&self, attempt: u32) -> VirtDuration {
        let mut d = self.base;
        for _ in 0..attempt {
            let next = VirtDuration::from_nanos(d.as_nanos().saturating_mul(self.factor as u64));
            if next >= self.max {
                return self.max;
            }
            d = next;
        }
        d.min(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultPlan::new(42, FaultSpec::soak());
        let mut b = FaultPlan::new(42, FaultSpec::soak());
        for i in 0..1000 {
            let kind = FaultKind::TRANSIENT[i % 3];
            assert_eq!(a.should_fail(kind), b.should_fail(kind));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn sites_are_independent_streams() {
        // Consulting one site must not perturb another site's answers.
        let mut lone = FaultPlan::new(7, FaultSpec::soak());
        let lone_answers: Vec<bool> = (0..200)
            .map(|_| lone.should_fail(FaultKind::DmaError))
            .collect();
        let mut mixed = FaultPlan::new(7, FaultSpec::soak());
        let mixed_answers: Vec<bool> = (0..200)
            .map(|_| {
                mixed.should_fail(FaultKind::PoolAllocFail);
                mixed.should_fail(FaultKind::QueueFull);
                mixed.should_fail(FaultKind::DmaError)
            })
            .collect();
        assert_eq!(lone_answers, mixed_answers);
    }

    #[test]
    fn bursts_are_bounded() {
        let spec = FaultSpec {
            pool_alloc_fail: 0.3,
            max_burst: 2,
            ..FaultSpec::none()
        };
        let mut plan = FaultPlan::new(11, spec);
        let mut run = 0u32;
        for _ in 0..10_000 {
            if plan.should_fail(FaultKind::PoolAllocFail) {
                run += 1;
                assert!(run <= spec.max_burst, "burst exceeded max_burst");
            } else {
                run = 0;
            }
        }
        assert!(plan.stats().pool_alloc_failures > 0);
    }

    #[test]
    fn none_spec_never_fires() {
        let mut plan = FaultPlan::new(3, FaultSpec::none());
        for _ in 0..1000 {
            assert!(!plan.should_fail(FaultKind::DmaError));
        }
        assert_eq!(plan.stats().total_injected(), 0);
    }

    #[test]
    fn xnack_flip_fires_once() {
        let mut plan = FaultPlan::new(1, FaultSpec::none()).with_xnack_flip_after(3);
        assert!(!plan.xnack_flip_due(0));
        assert!(!plan.xnack_flip_due(2));
        assert!(plan.xnack_flip_due(3));
        assert!(!plan.xnack_flip_due(4));
        assert_eq!(plan.stats().xnack_flips, 1);
    }

    #[test]
    fn from_seed_is_deterministic_and_bounded() {
        let a = FaultPlan::from_seed(99);
        let b = FaultPlan::from_seed(99);
        assert_eq!(a.spec().pool_alloc_fail, b.spec().pool_alloc_fail);
        assert_eq!(
            a.spec().xnack_flip_after_kernels,
            b.spec().xnack_flip_after_kernels
        );
        assert!(!a.xnack_unavailable());
        assert!(a.spec().max_burst >= 1);
        assert!(a.spec().pool_alloc_fail < 0.5);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let b = Backoff::default_policy();
        assert_eq!(b.delay(0), VirtDuration::from_micros(10));
        assert_eq!(b.delay(1), VirtDuration::from_micros(20));
        assert_eq!(b.delay(2), VirtDuration::from_micros(40));
        assert_eq!(b.delay(20), VirtDuration::from_millis(1));
    }
}
