//! Shared resources contended for by simulated threads.
//!
//! A resource is a pool of `capacity` identical FIFO servers (e.g. two SDMA
//! copy engines, one serialized runtime-stack lock, four accelerated compute
//! dies). Service requests are granted to the earliest-free server; requests
//! are ordered by arrival time, which the engine guarantees by always
//! advancing the thread with the smallest virtual clock.

use crate::time::{VirtDuration, VirtInstant};
use std::fmt;

/// Identifies a resource registered with a [`Machine`](crate::Machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    #[inline]
    /// Zero-based index into the machine's resource list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "res#{}", self.0)
    }
}

/// A pool of identical FIFO servers.
#[derive(Debug, Clone)]
pub struct Pool {
    name: String,
    /// Time at which each server becomes free.
    servers: Vec<VirtInstant>,
    /// Total busy time across all servers.
    busy: VirtDuration,
    /// Total time requests spent queued (start - arrival).
    queue_wait: VirtDuration,
    /// Number of grants.
    grants: u64,
}

impl Pool {
    /// Create a new instance.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "resource pool must have at least one server");
        Pool {
            name: name.into(),
            servers: vec![VirtInstant::ZERO; capacity],
            busy: VirtDuration::ZERO,
            queue_wait: VirtDuration::ZERO,
            grants: 0,
        }
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of identical servers in the pool.
    pub fn capacity(&self) -> usize {
        self.servers.len()
    }

    /// Serve a request arriving at `arrival` for `duration`.
    /// Returns the (start, end) of service on the earliest-free server.
    pub fn serve(
        &mut self,
        arrival: VirtInstant,
        duration: VirtDuration,
    ) -> (VirtInstant, VirtInstant) {
        let idx = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(_, free)| **free)
            .map(|(i, _)| i)
            .expect("pool has at least one server");
        let start = arrival.max(self.servers[idx]);
        let end = start + duration;
        self.servers[idx] = end;
        self.busy += duration;
        self.queue_wait += start - arrival;
        self.grants += 1;
        (start, end)
    }

    /// Earliest time at which any server is free.
    pub fn earliest_free(&self) -> VirtInstant {
        self.servers
            .iter()
            .copied()
            .min()
            .unwrap_or(VirtInstant::ZERO)
    }

    /// Total service time granted so far.
    pub fn busy_time(&self) -> VirtDuration {
        self.busy
    }

    /// Total time requests spent queued before service.
    pub fn queue_wait(&self) -> VirtDuration {
        self.queue_wait
    }

    /// Number of service grants.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Reset server availability and statistics (for reuse between runs).
    pub fn reset(&mut self) {
        for s in &mut self.servers {
            *s = VirtInstant::ZERO;
        }
        self.busy = VirtDuration::ZERO;
        self.queue_wait = VirtDuration::ZERO;
        self.grants = 0;
    }
}

/// Per-resource utilization figures extracted from a completed run.
#[derive(Debug, Clone)]
pub struct ResourceStats {
    /// Display name.
    pub name: String,
    /// Number of identical servers in the pool.
    pub capacity: usize,
    /// Total busy time across the pool's servers.
    pub busy: VirtDuration,
    /// Total time requests spent queued before service.
    pub queue_wait: VirtDuration,
    /// Number of service grants.
    pub grants: u64,
}

impl ResourceStats {
    /// Fraction of one server-lifetime the pool was busy, given the makespan.
    pub fn utilization(&self, makespan: VirtDuration) -> f64 {
        if makespan.is_zero() {
            return 0.0;
        }
        self.busy.as_nanos() as f64 / (makespan.as_nanos() as f64 * self.capacity as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> VirtInstant {
        VirtInstant::from_nanos(v)
    }

    fn dur(v: u64) -> VirtDuration {
        VirtDuration::from_nanos(v)
    }

    #[test]
    fn single_server_serializes() {
        let mut p = Pool::new("lock", 1);
        let (s1, e1) = p.serve(ns(0), dur(100));
        assert_eq!((s1.as_nanos(), e1.as_nanos()), (0, 100));
        let (s2, e2) = p.serve(ns(10), dur(50));
        assert_eq!((s2.as_nanos(), e2.as_nanos()), (100, 150));
        assert_eq!(p.busy_time().as_nanos(), 150);
        assert_eq!(p.queue_wait().as_nanos(), 90);
        assert_eq!(p.grants(), 2);
    }

    #[test]
    fn two_servers_run_concurrently() {
        let mut p = Pool::new("dma", 2);
        let (_, e1) = p.serve(ns(0), dur(100));
        let (s2, _) = p.serve(ns(10), dur(100));
        assert_eq!(e1.as_nanos(), 100);
        assert_eq!(s2.as_nanos(), 10); // second engine free immediately
        let (s3, _) = p.serve(ns(20), dur(10));
        assert_eq!(s3.as_nanos(), 100); // earliest-free server is #1 at t=100
    }

    #[test]
    fn idle_gap_is_not_busy() {
        let mut p = Pool::new("gpu", 1);
        p.serve(ns(0), dur(10));
        p.serve(ns(1000), dur(10));
        assert_eq!(p.busy_time().as_nanos(), 20);
        assert_eq!(p.queue_wait(), VirtDuration::ZERO);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = Pool::new("lock", 1);
        p.serve(ns(0), dur(100));
        p.reset();
        assert_eq!(p.busy_time(), VirtDuration::ZERO);
        assert_eq!(p.grants(), 0);
        let (s, _) = p.serve(ns(0), dur(1));
        assert_eq!(s.as_nanos(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_capacity_rejected() {
        let _ = Pool::new("bad", 0);
    }

    #[test]
    fn utilization_is_bounded() {
        let stats = ResourceStats {
            name: "gpu".into(),
            capacity: 2,
            busy: dur(100),
            queue_wait: VirtDuration::ZERO,
            grants: 1,
        };
        let u = stats.utilization(dur(100));
        assert!((u - 0.5).abs() < 1e-12);
        assert_eq!(stats.utilization(VirtDuration::ZERO), 0.0);
    }
}
