//! Operations recorded by simulated threads.
//!
//! Higher layers (the HSA runtime, the OpenMP runtime) *record* operations
//! while executing a workload's functional effects; the engine later resolves
//! virtual-time placement of every operation against shared resources.

use crate::resource::ResourceId;
use crate::time::VirtDuration;

/// Identifies an asynchronous service for a later [`Segment::AwaitToken`].
/// Tokens are caller-assigned and must be unique within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AsyncToken(pub u64);

/// An opaque aggregation tag attached to an operation.
///
/// Upper layers map their API enums onto tags (e.g. one tag per HSA call
/// kind) and aggregate a completed schedule by tag to produce call-latency
/// statistics (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(pub u32);

impl Tag {
    /// Tag for operations no layer wants to aggregate.
    pub const UNTAGGED: Tag = Tag(u32::MAX);
}

/// One timed phase of an operation.
///
/// The issuing thread is blocked for `Local`, `Service` and `AwaitToken`
/// segments (synchronous semantics: kernel launches followed by a signal
/// wait, copies completing before the mapping call returns).
/// `AsyncService` submits work without blocking — the `nowait` model — and
/// a later `AwaitToken` (from any thread) blocks until it completes.
#[derive(Debug, Clone)]
pub enum Segment {
    /// Busy time on the issuing thread, no shared resource involved.
    Local(VirtDuration),
    /// FIFO service on one unit of a shared resource pool.
    Service {
        /// The resource pool this segment serves on.
        resource: ResourceId,
        /// Service duration (excludes queueing).
        duration: VirtDuration,
    },
    /// FIFO service submitted at the thread's current clock *without*
    /// blocking it; completion is bound to `token`.
    AsyncService {
        /// The resource pool this segment serves on.
        resource: ResourceId,
        /// Service duration (excludes queueing).
        duration: VirtDuration,
        /// Completion handle for a later [`Segment::AwaitToken`].
        token: AsyncToken,
    },
    /// Block until the async service bound to `token` completes.
    /// Awaiting a token that was never submitted completes immediately.
    AwaitToken {
        /// The async service to wait for.
        token: AsyncToken,
    },
}

impl Segment {
    /// The service/busy duration of this segment (excludes queueing;
    /// zero for awaits, whose time is pure blocking).
    pub fn duration(&self) -> VirtDuration {
        match self {
            Segment::Local(d) => *d,
            Segment::Service { duration, .. } | Segment::AsyncService { duration, .. } => *duration,
            Segment::AwaitToken { .. } => VirtDuration::ZERO,
        }
    }
}

/// A recorded operation: an ordered list of segments plus an aggregation tag.
#[derive(Debug, Clone)]
pub struct Op {
    /// Aggregation tag.
    pub tag: Tag,
    /// Ordered timed phases of the operation.
    pub segments: Vec<Segment>,
}

impl Op {
    /// Create a new instance.
    pub fn new(tag: Tag) -> Self {
        Op {
            tag,
            segments: Vec::new(),
        }
    }

    /// A purely thread-local delay.
    pub fn local(tag: Tag, d: VirtDuration) -> Self {
        Op {
            tag,
            segments: vec![Segment::Local(d)],
        }
    }

    /// A single FIFO service on `resource`.
    pub fn service(tag: Tag, resource: ResourceId, d: VirtDuration) -> Self {
        Op {
            tag,
            segments: vec![Segment::Service {
                resource,
                duration: d,
            }],
        }
    }

    /// Append a thread-local delay segment.
    pub fn then_local(mut self, d: VirtDuration) -> Self {
        self.segments.push(Segment::Local(d));
        self
    }

    /// Append a FIFO service segment.
    pub fn then_service(mut self, resource: ResourceId, d: VirtDuration) -> Self {
        self.segments.push(Segment::Service {
            resource,
            duration: d,
        });
        self
    }

    /// Append a non-blocking service submission bound to `token`.
    pub fn then_async_service(
        mut self,
        resource: ResourceId,
        d: VirtDuration,
        token: AsyncToken,
    ) -> Self {
        self.segments.push(Segment::AsyncService {
            resource,
            duration: d,
            token,
        });
        self
    }

    /// Append a blocking wait for `token`.
    pub fn then_await(mut self, token: AsyncToken) -> Self {
        self.segments.push(Segment::AwaitToken { token });
        self
    }

    /// Sum of segment durations (lower bound on latency; queueing adds more).
    pub fn min_latency(&self) -> VirtDuration {
        self.segments.iter().map(Segment::duration).sum()
    }
}

/// Per-thread recorded operation streams, ready for scheduling.
#[derive(Debug, Default, Clone)]
pub struct OpStreams {
    streams: Vec<Vec<Op>>,
}

impl OpStreams {
    /// Create a new instance.
    pub fn new(threads: usize) -> Self {
        OpStreams {
            streams: vec![Vec::new(); threads],
        }
    }

    /// Number of simulated threads.
    pub fn threads(&self) -> usize {
        self.streams.len()
    }

    /// Append an operation to `thread`'s stream, growing the thread set if
    /// needed (threads are created lazily by upper layers).
    pub fn push(&mut self, thread: usize, op: Op) {
        if thread >= self.streams.len() {
            self.streams.resize_with(thread + 1, Vec::new);
        }
        self.streams[thread].push(op);
    }

    /// The recorded operations of `thread`.
    pub fn stream(&self, thread: usize) -> &[Op] {
        &self.streams[thread]
    }

    /// Total operations across all threads.
    pub fn total_ops(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    pub(crate) fn into_inner(self) -> Vec<Vec<Op>> {
        self.streams
    }

    /// Iterate entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[Op])> {
        self.streams
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_builders_compose() {
        let r = ResourceId(0);
        let op = Op::new(Tag(1))
            .then_local(VirtDuration::from_nanos(5))
            .then_service(r, VirtDuration::from_nanos(10))
            .then_local(VirtDuration::from_nanos(1));
        assert_eq!(op.segments.len(), 3);
        assert_eq!(op.min_latency().as_nanos(), 16);
    }

    #[test]
    fn streams_grow_lazily() {
        let mut s = OpStreams::new(1);
        s.push(3, Op::local(Tag::UNTAGGED, VirtDuration::ZERO));
        assert_eq!(s.threads(), 4);
        assert_eq!(s.total_ops(), 1);
        assert!(s.stream(0).is_empty());
        assert_eq!(s.stream(3).len(), 1);
    }

    #[test]
    fn segment_duration_matches() {
        let seg = Segment::Service {
            resource: ResourceId(2),
            duration: VirtDuration::from_nanos(7),
        };
        assert_eq!(seg.duration().as_nanos(), 7);
        assert_eq!(
            Segment::Local(VirtDuration::from_nanos(3))
                .duration()
                .as_nanos(),
            3
        );
    }
}
