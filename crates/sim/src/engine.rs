//! The deterministic list-scheduling engine.
//!
//! Threads' recorded operation streams are replayed in virtual-time order:
//! the engine always advances the thread with the smallest clock (ties broken
//! by thread id), which guarantees FIFO resource grants ordered by request
//! time and therefore a deterministic, interleaving-faithful makespan.

use crate::noise::{NoiseModel, SplitMix64};
use crate::op::{AsyncToken, Op, OpStreams, Segment, Tag};
use crate::resource::{Pool, ResourceId, ResourceStats};
use crate::time::{VirtDuration, VirtInstant};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// The fixed set of shared resources a simulation run contends for.
#[derive(Debug, Clone, Default)]
pub struct Machine {
    pools: Vec<Pool>,
}

impl Machine {
    /// Create a new instance.
    pub fn new() -> Self {
        Machine { pools: Vec::new() }
    }

    /// Register a pool of `capacity` identical FIFO servers.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: usize) -> ResourceId {
        let id = ResourceId(self.pools.len() as u32);
        self.pools.push(Pool::new(name, capacity));
        id
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.pools.len()
    }

    /// Display name of a resource.
    pub fn resource_name(&self, id: ResourceId) -> &str {
        self.pools[id.index()].name()
    }
}

/// Timing of one completed operation.
#[derive(Debug, Clone, Copy)]
pub struct OpRecord {
    /// Issuing thread index.
    pub thread: u32,
    /// Aggregation tag.
    pub tag: Tag,
    /// Operation start time (includes queueing).
    pub start: VirtInstant,
    /// Operation completion time.
    pub end: VirtInstant,
}

impl OpRecord {
    /// Total in-operation time, `end - start`.
    pub fn latency(&self) -> VirtDuration {
        self.end - self.start
    }
}

/// Aggregate latency statistics for one tag.
#[derive(Debug, Clone, Copy, Default)]
pub struct TagStats {
    /// Number of operations with this tag.
    pub count: u64,
    /// Summed latency across all operations with this tag.
    pub total_latency: VirtDuration,
}

impl TagStats {
    /// Average per-operation latency.
    pub fn mean_latency(&self) -> VirtDuration {
        if self.count == 0 {
            VirtDuration::ZERO
        } else {
            self.total_latency / self.count
        }
    }
}

/// The result of resolving all operation streams against the machine.
#[derive(Debug, Clone)]
pub struct Schedule {
    records: Vec<OpRecord>,
    thread_finish: Vec<VirtInstant>,
    makespan: VirtDuration,
    resources: Vec<ResourceStats>,
}

impl Schedule {
    /// Total virtual execution time (all threads start at t=0).
    pub fn makespan(&self) -> VirtDuration {
        self.makespan
    }

    /// Completion time of `thread`'s last operation.
    pub fn thread_finish(&self, thread: usize) -> VirtInstant {
        self.thread_finish[thread]
    }

    /// Number of simulated threads.
    pub fn threads(&self) -> usize {
        self.thread_finish.len()
    }

    /// Per-operation timing records, in completion order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Completion times of every operation, grouped by issuing thread in
    /// issue order: `ends[t][k]` is when thread `t`'s `k`-th operation
    /// finished. The engine resolves each thread's operations strictly in
    /// order, so the per-thread subsequence of [`records`](Self::records)
    /// *is* issue order; telemetry anchors (op-stream cursors captured at
    /// emission time) resolve against this view.
    pub fn per_thread_op_ends(&self) -> Vec<Vec<VirtInstant>> {
        let mut out = vec![Vec::new(); self.thread_finish.len()];
        for r in &self.records {
            out[r.thread as usize].push(r.end);
        }
        out
    }

    /// Per-resource utilization statistics.
    pub fn resource_stats(&self) -> &[ResourceStats] {
        &self.resources
    }

    /// Per-tag call counts and total in-call latency (rocprof analog).
    pub fn aggregate_by_tag(&self) -> HashMap<Tag, TagStats> {
        let mut out: HashMap<Tag, TagStats> = HashMap::new();
        for r in &self.records {
            if r.tag == Tag::UNTAGGED {
                continue;
            }
            let s = out.entry(r.tag).or_default();
            s.count += 1;
            s.total_latency += r.latency();
        }
        out
    }

    /// Statistics for a single tag (zero if it never occurred).
    pub fn tag_stats(&self, tag: Tag) -> TagStats {
        let mut s = TagStats::default();
        for r in &self.records {
            if r.tag == tag {
                s.count += 1;
                s.total_latency += r.latency();
            }
        }
        s
    }
}

/// Options controlling one scheduling pass.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Measurement-noise model applied to segment durations.
    pub noise: NoiseModel,
    /// RNG seed for the noise model.
    pub seed: u64,
    /// Tags treated as syscall-class for the outlier noise model.
    pub syscall_tag_min: u32,
    /// Upper bound (inclusive) of the syscall-class tag range.
    pub syscall_tag_max: u32,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            noise: NoiseModel::NONE,
            seed: 0,
            syscall_tag_min: 1,
            syscall_tag_max: 0, // empty range: no syscall-class tags
        }
    }
}

impl RunOptions {
    /// Options with no noise (fully deterministic).
    pub fn noiseless() -> Self {
        Self::default()
    }

    /// Options with the given noise model and seed.
    pub fn with_noise(noise: NoiseModel, seed: u64) -> Self {
        RunOptions {
            noise,
            seed,
            ..Self::default()
        }
    }

    /// Mark the inclusive tag range `[lo, hi]` as syscall-class.
    pub fn syscall_tags(mut self, lo: u32, hi: u32) -> Self {
        self.syscall_tag_min = lo;
        self.syscall_tag_max = hi;
        self
    }

    fn is_syscall(&self, tag: Tag) -> bool {
        tag.0 >= self.syscall_tag_min && tag.0 <= self.syscall_tag_max
    }
}

/// Resolve `streams` against `machine`, producing a deterministic schedule.
///
/// `machine` is taken by value (cloned cheaply by callers that reuse a
/// template) so that each run starts from idle resources.
pub fn schedule(mut machine: Machine, streams: OpStreams, opts: &RunOptions) -> Schedule {
    let streams = streams.into_inner();
    let nthreads = streams.len();
    let mut records = Vec::with_capacity(streams.iter().map(Vec::len).sum());
    let mut thread_finish = vec![VirtInstant::ZERO; nthreads];
    let mut rng = SplitMix64::new(opts.seed ^ 0xA0_1B_2C_3D);
    // Completion times of async services, by token.
    let mut completions: HashMap<AsyncToken, VirtInstant> = HashMap::new();

    // Heap of (thread clock, thread id); pop smallest. Exactly one *segment*
    // is processed per pop, so a Service request is issued at the thread's
    // true virtual clock: every other runnable thread has a clock >= ours at
    // that moment, which makes FIFO grants ordered by request time exact.
    let mut heap: BinaryHeap<Reverse<(VirtInstant, usize)>> = BinaryHeap::new();
    // Per-thread cursor: (op index, segment index, start of current op).
    let mut cursors = vec![(0usize, 0usize, VirtInstant::ZERO); nthreads];
    let mut clocks = vec![VirtInstant::ZERO; nthreads];
    for (t, stream) in streams.iter().enumerate() {
        if !stream.is_empty() {
            heap.push(Reverse((VirtInstant::ZERO, t)));
        }
    }

    while let Some(Reverse((now, t))) = heap.pop() {
        debug_assert_eq!(now, clocks[t]);
        let (op_idx, seg_idx, op_start) = cursors[t];
        let op: &Op = &streams[t][op_idx];
        let op_start = if seg_idx == 0 { clocks[t] } else { op_start };
        let syscall = opts.is_syscall(op.tag);
        let mut clock = clocks[t];

        if op.segments.is_empty() {
            records.push(OpRecord {
                thread: t as u32,
                tag: op.tag,
                start: op_start,
                end: clock,
            });
        } else {
            let seg = &op.segments[seg_idx];
            let base = seg.duration();
            let dur = if opts.noise.is_none() {
                base
            } else if syscall {
                base.mul_f64(opts.noise.syscall_factor(&mut rng))
            } else {
                base.mul_f64(opts.noise.factor(&mut rng))
            };
            match seg {
                Segment::Local(_) => clock += dur,
                Segment::Service { resource, .. } => {
                    let (_, end) = machine.pools[resource.index()].serve(clock, dur);
                    clock = end;
                }
                Segment::AsyncService {
                    resource, token, ..
                } => {
                    // Submit at the thread's clock; do not block.
                    let (_, end) = machine.pools[resource.index()].serve(clock, dur);
                    completions.insert(*token, end);
                }
                Segment::AwaitToken { token } => {
                    if let Some(&end) = completions.get(token) {
                        clock = clock.max(end);
                    }
                }
            }
            if seg_idx + 1 < op.segments.len() {
                clocks[t] = clock;
                thread_finish[t] = clock;
                cursors[t] = (op_idx, seg_idx + 1, op_start);
                heap.push(Reverse((clock, t)));
                continue;
            }
            records.push(OpRecord {
                thread: t as u32,
                tag: op.tag,
                start: op_start,
                end: clock,
            });
        }

        clocks[t] = clock;
        thread_finish[t] = clock;
        cursors[t] = (op_idx + 1, 0, clock);
        if op_idx + 1 < streams[t].len() {
            heap.push(Reverse((clock, t)));
        }
    }

    let makespan = thread_finish
        .iter()
        .copied()
        .max()
        .unwrap_or(VirtInstant::ZERO)
        .since(VirtInstant::ZERO);

    let resources = machine
        .pools
        .iter()
        .map(|p| ResourceStats {
            name: p.name().to_string(),
            capacity: p.capacity(),
            busy: p.busy_time(),
            queue_wait: p.queue_wait(),
            grants: p.grants(),
        })
        .collect();

    Schedule {
        records,
        thread_finish,
        makespan,
        resources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(ns: u64) -> VirtDuration {
        VirtDuration::from_nanos(ns)
    }

    #[test]
    fn single_thread_sums_segments() {
        let mut m = Machine::new();
        let r = m.add_resource("gpu", 1);
        let mut s = OpStreams::new(1);
        s.push(0, Op::local(Tag(1), d(10)));
        s.push(0, Op::service(Tag(2), r, d(20)));
        let sched = schedule(m, s, &RunOptions::noiseless());
        assert_eq!(sched.makespan().as_nanos(), 30);
        assert_eq!(sched.records().len(), 2);
        assert_eq!(sched.records()[1].start.as_nanos(), 10);
        assert_eq!(sched.records()[1].end.as_nanos(), 30);
    }

    #[test]
    fn contention_serializes_on_lock() {
        let mut m = Machine::new();
        let lock = m.add_resource("runtime-lock", 1);
        let mut s = OpStreams::new(2);
        for t in 0..2 {
            for _ in 0..3 {
                s.push(t, Op::service(Tag(1), lock, d(100)));
            }
        }
        let sched = schedule(m, s, &RunOptions::noiseless());
        // 6 serialized services of 100ns each.
        assert_eq!(sched.makespan().as_nanos(), 600);
        let stats = sched.tag_stats(Tag(1));
        assert_eq!(stats.count, 6);
        // Total latency includes queueing: 0+100 + 100+200 + 200+300... wait,
        // services interleave by request time; total in-call latency is the
        // sum over ops of (end - start) which includes queue delay.
        assert!(stats.total_latency.as_nanos() > 600);
    }

    #[test]
    fn disjoint_resources_overlap() {
        let mut m = Machine::new();
        let gpu = m.add_resource("gpu", 1);
        let dma = m.add_resource("dma", 1);
        let mut s = OpStreams::new(2);
        s.push(0, Op::service(Tag(1), gpu, d(1000)));
        s.push(1, Op::service(Tag(2), dma, d(1000)));
        let sched = schedule(m, s, &RunOptions::noiseless());
        // Copy on thread 1 hides behind kernel on thread 0.
        assert_eq!(sched.makespan().as_nanos(), 1000);
    }

    #[test]
    fn fifo_order_respects_request_time() {
        let mut m = Machine::new();
        let r = m.add_resource("r", 1);
        let mut s = OpStreams::new(2);
        // Thread 0 requests r at t=50 (after a local delay), thread 1 at t=0.
        s.push(0, Op::new(Tag(1)).then_local(d(50)).then_service(r, d(100)));
        s.push(1, Op::service(Tag(2), r, d(100)));
        let sched = schedule(m, s, &RunOptions::noiseless());
        let rec1 = sched.records().iter().find(|x| x.tag == Tag(2)).unwrap();
        let rec0 = sched.records().iter().find(|x| x.tag == Tag(1)).unwrap();
        // Thread 1 wins the resource (requested at t=0); thread 0 queues.
        assert_eq!(rec1.end.as_nanos(), 100);
        assert_eq!(rec0.end.as_nanos(), 200);
    }

    #[test]
    fn pool_capacity_allows_parallel_service() {
        let mut m = Machine::new();
        let dma = m.add_resource("dma", 2);
        let mut s = OpStreams::new(4);
        for t in 0..4 {
            s.push(t, Op::service(Tag(1), dma, d(100)));
        }
        let sched = schedule(m, s, &RunOptions::noiseless());
        // 4 copies over 2 engines: 2 waves of 100ns.
        assert_eq!(sched.makespan().as_nanos(), 200);
    }

    #[test]
    fn async_service_overlaps_issuing_thread() {
        use crate::op::AsyncToken;
        let mut m = Machine::new();
        let gpu = m.add_resource("gpu", 1);
        let mut s = OpStreams::new(1);
        // Submit a 1000ns kernel async, do 600ns of host work, then await:
        // total = max(1000, 600) = 1000, not 1600.
        s.push(
            0,
            Op::new(Tag(1)).then_async_service(gpu, d(1000), AsyncToken(7)),
        );
        s.push(0, Op::local(Tag(2), d(600)));
        s.push(0, Op::new(Tag(3)).then_await(AsyncToken(7)));
        let sched = schedule(m, s, &RunOptions::noiseless());
        assert_eq!(sched.makespan().as_nanos(), 1000);
        // The await op's latency is the residual wait (400ns).
        let await_rec = sched.records().iter().find(|r| r.tag == Tag(3)).unwrap();
        assert_eq!(await_rec.latency().as_nanos(), 400);
    }

    #[test]
    fn async_services_queue_fifo_on_the_resource() {
        use crate::op::AsyncToken;
        let mut m = Machine::new();
        let gpu = m.add_resource("gpu", 1);
        let mut s = OpStreams::new(1);
        // Two async kernels back to back on one server: they serialize on
        // the resource, and awaiting both takes 2000ns.
        s.push(
            0,
            Op::new(Tag(1)).then_async_service(gpu, d(1000), AsyncToken(1)),
        );
        s.push(
            0,
            Op::new(Tag(1)).then_async_service(gpu, d(1000), AsyncToken(2)),
        );
        s.push(
            0,
            Op::new(Tag(2))
                .then_await(AsyncToken(1))
                .then_await(AsyncToken(2)),
        );
        let sched = schedule(m, s, &RunOptions::noiseless());
        assert_eq!(sched.makespan().as_nanos(), 2000);
    }

    #[test]
    fn awaiting_unknown_token_is_immediate() {
        use crate::op::AsyncToken;
        let m = Machine::new();
        let mut s = OpStreams::new(1);
        s.push(0, Op::new(Tag(1)).then_await(AsyncToken(99)));
        let sched = schedule(m, s, &RunOptions::noiseless());
        assert_eq!(sched.makespan(), VirtDuration::ZERO);
    }

    #[test]
    fn noise_perturbs_but_is_reproducible() {
        let build = || {
            let mut m = Machine::new();
            let r = m.add_resource("r", 1);
            let mut s = OpStreams::new(1);
            for _ in 0..100 {
                s.push(0, Op::service(Tag(1), r, d(1000)));
            }
            (m, s)
        };
        let opts = RunOptions::with_noise(NoiseModel::quiet_node(), 7);
        let (m1, s1) = build();
        let (m2, s2) = build();
        let a = schedule(m1, s1, &opts);
        let b = schedule(m2, s2, &opts);
        assert_eq!(a.makespan(), b.makespan());
        assert_ne!(a.makespan().as_nanos(), 100_000); // jitter moved it

        let (m3, s3) = build();
        let c = schedule(m3, s3, &RunOptions::with_noise(NoiseModel::quiet_node(), 8));
        assert_ne!(a.makespan(), c.makespan()); // different seed, different run
    }

    #[test]
    fn empty_streams_finish_at_zero() {
        let m = Machine::new();
        let sched = schedule(m, OpStreams::new(3), &RunOptions::noiseless());
        assert_eq!(sched.makespan(), VirtDuration::ZERO);
        assert_eq!(sched.records().len(), 0);
        assert_eq!(sched.threads(), 3);
    }

    #[test]
    fn aggregate_skips_untagged() {
        let mut m = Machine::new();
        let r = m.add_resource("r", 1);
        let mut s = OpStreams::new(1);
        s.push(0, Op::service(Tag::UNTAGGED, r, d(10)));
        s.push(0, Op::service(Tag(3), r, d(10)));
        let sched = schedule(m, s, &RunOptions::noiseless());
        let agg = sched.aggregate_by_tag();
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[&Tag(3)].count, 1);
    }

    #[test]
    fn resource_stats_reported() {
        let mut m = Machine::new();
        let gpu = m.add_resource("gpu", 1);
        let mut s = OpStreams::new(1);
        s.push(0, Op::service(Tag(1), gpu, d(500)));
        let sched = schedule(m, s, &RunOptions::noiseless());
        let rs = &sched.resource_stats()[0];
        assert_eq!(rs.name, "gpu");
        assert_eq!(rs.busy.as_nanos(), 500);
        assert_eq!(rs.grants, 1);
        assert!((rs.utilization(sched.makespan()) - 1.0).abs() < 1e-12);
    }
}
