//! Virtual time primitives.
//!
//! All simulation time is expressed in integer nanoseconds of *virtual* time.
//! Virtual time is fully deterministic: it advances only when the engine
//! schedules work, never from the wall clock.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtDuration(u64);

impl VirtDuration {
    /// The zero duration.
    pub const ZERO: VirtDuration = VirtDuration(0);

    #[inline]
    /// Duration/instant from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        VirtDuration(ns)
    }

    #[inline]
    /// Duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        VirtDuration(us * 1_000)
    }

    #[inline]
    /// Duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        VirtDuration(ms * 1_000_000)
    }

    #[inline]
    /// Duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        VirtDuration(s * 1_000_000_000)
    }

    #[inline]
    /// Value in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    /// Value in microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[inline]
    /// Value in milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    #[inline]
    /// Value in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    #[inline]
    /// True when zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        VirtDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a floating-point factor (used by the noise model);
    /// rounds to the nearest nanosecond and saturates at zero.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Self {
        let v = (self.0 as f64 * factor).round();
        VirtDuration(if v <= 0.0 { 0 } else { v as u64 })
    }

    #[inline]
    /// The larger of the two.
    pub fn max(self, other: Self) -> Self {
        VirtDuration(self.0.max(other.0))
    }

    #[inline]
    /// The smaller of the two.
    pub fn min(self, other: Self) -> Self {
        VirtDuration(self.0.min(other.0))
    }
}

impl Add for VirtDuration {
    type Output = VirtDuration;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        VirtDuration(self.0 + rhs.0)
    }
}

impl AddAssign for VirtDuration {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for VirtDuration {
    type Output = VirtDuration;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        VirtDuration(self.0 - rhs.0)
    }
}

impl SubAssign for VirtDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for VirtDuration {
    type Output = VirtDuration;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        VirtDuration(self.0 * rhs)
    }
}

impl Div<u64> for VirtDuration {
    type Output = VirtDuration;
    #[inline]
    fn div(self, rhs: u64) -> Self {
        VirtDuration(self.0 / rhs)
    }
}

impl Sum for VirtDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(VirtDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for VirtDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtInstant(u64);

impl VirtInstant {
    /// Simulation start.
    pub const ZERO: VirtInstant = VirtInstant(0);

    #[inline]
    /// Duration/instant from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        VirtInstant(ns)
    }

    #[inline]
    /// Value in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: VirtInstant) -> VirtDuration {
        VirtDuration(self.0 - earlier.0)
    }

    #[inline]
    /// The larger of the two.
    pub fn max(self, other: Self) -> Self {
        VirtInstant(self.0.max(other.0))
    }
}

impl Add<VirtDuration> for VirtInstant {
    type Output = VirtInstant;
    #[inline]
    fn add(self, rhs: VirtDuration) -> Self {
        VirtInstant(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<VirtDuration> for VirtInstant {
    #[inline]
    fn add_assign(&mut self, rhs: VirtDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<VirtInstant> for VirtInstant {
    type Output = VirtDuration;
    #[inline]
    fn sub(self, rhs: VirtInstant) -> VirtDuration {
        VirtDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for VirtInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", VirtDuration(self.0))
    }
}

/// Convert a byte count and a bandwidth (bytes per second) into a duration.
///
/// Rounds up so that any nonzero transfer takes at least one nanosecond.
pub fn transfer_time(bytes: u64, bytes_per_sec: u64) -> VirtDuration {
    if bytes == 0 || bytes_per_sec == 0 {
        return VirtDuration::ZERO;
    }
    // ns = bytes * 1e9 / bps, computed in u128 to avoid overflow.
    let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
    VirtDuration(ns as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(VirtDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(VirtDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(VirtDuration::from_secs(3).as_nanos(), 3_000_000_000);
    }

    #[test]
    fn duration_arithmetic() {
        let a = VirtDuration::from_nanos(100);
        let b = VirtDuration::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!((a * 3).as_nanos(), 300);
        assert_eq!((a / 4).as_nanos(), 25);
        assert_eq!(b.saturating_sub(a), VirtDuration::ZERO);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = VirtInstant::ZERO;
        let t1 = t0 + VirtDuration::from_nanos(50);
        assert_eq!(t1.as_nanos(), 50);
        assert_eq!(t1.since(t0).as_nanos(), 50);
        assert_eq!((t1 - t0).as_nanos(), 50);
    }

    #[test]
    fn mul_f64_rounds_and_saturates() {
        let d = VirtDuration::from_nanos(100);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 150);
        assert_eq!(d.mul_f64(0.0).as_nanos(), 0);
        assert_eq!(d.mul_f64(-2.0).as_nanos(), 0);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 GiB/s => 1 byte takes 1ns (rounded up from ~0.93ns).
        assert_eq!(transfer_time(1, 1 << 30).as_nanos(), 1);
        // 1e9 B/s => 1000 bytes takes exactly 1000ns.
        assert_eq!(transfer_time(1000, 1_000_000_000).as_nanos(), 1000);
        assert_eq!(transfer_time(0, 1_000_000_000), VirtDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", VirtDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", VirtDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", VirtDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", VirtDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: VirtDuration = (1..=4).map(VirtDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }
}
