//! # sim-des — deterministic virtual-time discrete-event engine
//!
//! The foundation of the MI300A zero-copy reproduction: a small,
//! dependency-free list-scheduling simulator. Higher layers (the simulated
//! HSA/ROCr runtime and the OpenMP offloading runtime) *record* per-thread
//! operation streams while executing a workload's functional effects against
//! simulated memory; this crate then resolves those streams against a set of
//! shared FIFO resources (runtime-stack lock, DMA copy engines, GPU compute)
//! and reports makespans, per-operation latencies, and per-resource
//! utilization — all in deterministic virtual time.
//!
//! ## Why virtual time
//!
//! The paper's results are execution-*time ratios* between runtime
//! configurations on hardware we do not have. Virtual time makes each
//! configuration's cost composition explicit and reproducible: memory-copy
//! folding, first-touch page-fault stalls, and prefault syscalls each
//! contribute calibrated durations, and multi-thread effects (HSA-call
//! serialization, copy/kernel overlap) emerge from resource contention in
//! the schedule rather than from hand-waved formulas.
//!
//! ## Example
//!
//! ```
//! use sim_des::{Machine, Op, OpStreams, RunOptions, Tag, VirtDuration, schedule};
//!
//! let mut machine = Machine::new();
//! let gpu = machine.add_resource("gpu", 1);
//! let dma = machine.add_resource("dma", 2);
//!
//! let mut streams = OpStreams::new(2);
//! // Thread 0 runs a kernel; thread 1's copy overlaps it on the DMA engine.
//! streams.push(0, Op::service(Tag(1), gpu, VirtDuration::from_micros(100)));
//! streams.push(1, Op::service(Tag(2), dma, VirtDuration::from_micros(60)));
//!
//! let sched = schedule(machine, streams, &RunOptions::noiseless());
//! assert_eq!(sched.makespan(), VirtDuration::from_micros(100));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod fault;
mod noise;
mod op;
mod resource;
mod time;

pub use engine::{schedule, Machine, OpRecord, RunOptions, Schedule, TagStats};
pub use fault::{Backoff, FaultKind, FaultPlan, FaultSpec, FaultStats};
pub use noise::{NoiseModel, SplitMix64};
pub use op::{AsyncToken, Op, OpStreams, Segment, Tag};
pub use resource::{Pool, ResourceId, ResourceStats};
pub use time::{transfer_time, VirtDuration, VirtInstant};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_streams() -> impl Strategy<Value = (Machine, OpStreams, usize)> {
        // up to 4 threads, up to 3 resources with capacity 1..3, up to 30 ops
        (
            1usize..4,
            proptest::collection::vec((0u32..3, 1usize..3), 1..4),
        )
            .prop_flat_map(|(threads, resources)| {
                let nres = resources.len();
                let ops = proptest::collection::vec(
                    (0usize..threads, 0usize..(nres + 1), 1u64..5_000, 0u32..8),
                    0..30,
                );
                (Just(threads), Just(resources), ops).prop_map(|(threads, resources, ops)| {
                    let mut m = Machine::new();
                    let ids: Vec<_> = resources
                        .iter()
                        .enumerate()
                        .map(|(i, (_, cap))| m.add_resource(format!("r{i}"), *cap))
                        .collect();
                    let mut s = OpStreams::new(threads);
                    for (t, r, dur, tag) in ops {
                        let d = VirtDuration::from_nanos(dur);
                        let op = if r == ids.len() {
                            Op::local(Tag(tag), d)
                        } else {
                            Op::service(Tag(tag), ids[r], d)
                        };
                        s.push(t, op);
                    }
                    (m, s, threads)
                })
            })
    }

    proptest! {
        /// Ops on the same thread never overlap and appear in program order.
        #[test]
        fn thread_ops_are_ordered((m, s, threads) in arb_streams()) {
            let sched = schedule(m, s, &RunOptions::noiseless());
            let mut last_end = vec![VirtInstant::ZERO; threads];
            for r in sched.records() {
                let t = r.thread as usize;
                prop_assert!(r.start >= last_end[t]);
                prop_assert!(r.end >= r.start);
                last_end[t] = r.end;
            }
        }

        /// Makespan equals the max thread finish time and bounds every op.
        #[test]
        fn makespan_bounds_everything((m, s, _threads) in arb_streams()) {
            let sched = schedule(m, s, &RunOptions::noiseless());
            let end = VirtInstant::ZERO + sched.makespan();
            for r in sched.records() {
                prop_assert!(r.end <= end);
            }
            let max_finish = (0..sched.threads())
                .map(|t| sched.thread_finish(t))
                .max()
                .unwrap_or(VirtInstant::ZERO);
            prop_assert_eq!(max_finish, end);
        }

        /// The makespan never exceeds the fully-serialized sum of durations,
        /// and is at least the longest single thread's local sum.
        #[test]
        fn makespan_within_serial_bounds((m, s, threads) in arb_streams()) {
            let mut per_thread = vec![VirtDuration::ZERO; threads];
            let mut total = VirtDuration::ZERO;
            for (t, stream) in s.iter() {
                for op in stream {
                    per_thread[t] += op.min_latency();
                    total += op.min_latency();
                }
            }
            let sched = schedule(m, s, &RunOptions::noiseless());
            let longest = per_thread.into_iter().max().unwrap_or(VirtDuration::ZERO);
            prop_assert!(sched.makespan() >= longest);
            prop_assert!(sched.makespan() <= total);
        }

        /// Busy time on each resource equals the sum of service durations
        /// routed to it (conservation of work).
        #[test]
        fn busy_time_is_conserved((m, s, _threads) in arb_streams()) {
            let mut expected = vec![VirtDuration::ZERO; m.resource_count()];
            for (_, stream) in s.iter() {
                for op in stream {
                    for seg in &op.segments {
                        if let Segment::Service { resource, duration } = seg {
                            expected[resource.index()] += *duration;
                        }
                    }
                }
            }
            let sched = schedule(m, s, &RunOptions::noiseless());
            for (i, rs) in sched.resource_stats().iter().enumerate() {
                prop_assert_eq!(rs.busy, expected[i]);
            }
        }

        /// Scheduling is a pure function of (machine, streams, options).
        #[test]
        fn scheduling_is_deterministic((m, s, _threads) in arb_streams()) {
            let a = schedule(m.clone(), s.clone(), &RunOptions::noiseless());
            let b = schedule(m, s, &RunOptions::noiseless());
            prop_assert_eq!(a.makespan(), b.makespan());
            prop_assert_eq!(a.records().len(), b.records().len());
        }

        /// Metamorphic: growing every resource pool never increases the
        /// makespan (more servers can only reduce queueing).
        #[test]
        fn more_capacity_never_hurts((m, s, _threads) in arb_streams()) {
            let base = schedule(m.clone(), s.clone(), &RunOptions::noiseless());
            let mut bigger = Machine::new();
            for i in 0..m.resource_count() {
                let id = ResourceId(i as u32);
                bigger.add_resource(m.resource_name(id).to_string(), 64);
            }
            let wide = schedule(bigger, s, &RunOptions::noiseless());
            prop_assert!(wide.makespan() <= base.makespan());
        }

        /// Metamorphic: appending an extra op to any thread never decreases
        /// the makespan.
        #[test]
        fn extra_work_never_helps((m, s, threads) in arb_streams(), extra in 1u64..1000) {
            let base = schedule(m.clone(), s.clone(), &RunOptions::noiseless());
            let mut s2 = OpStreams::new(threads);
            for (t, stream) in s.iter() {
                for op in stream {
                    s2.push(t, op.clone());
                }
            }
            s2.push(0, Op::local(Tag::UNTAGGED, VirtDuration::from_nanos(extra)));
            let more = schedule(m, s2, &RunOptions::noiseless());
            prop_assert!(more.makespan() >= base.makespan());
        }
    }
}
