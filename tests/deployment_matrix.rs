//! Deployment matrix: {APU, discrete} × {XNACK on, off} × the four
//! configurations. Asserts which configuration actually engages at startup
//! — degradation to Copy when an XNACK-dependent configuration meets a
//! deployment without XNACK — and that `UnsupportedDeployment` is returned
//! exactly when no fallback exists (`requires unified_shared_memory`).

use mi300a_zerocopy::hsa::Topology;
use mi300a_zerocopy::mem::{CostModel, DiscreteSpec, SystemKind};
use mi300a_zerocopy::omp::{OmpError, OmpRuntime, RunEnv, RuntimeConfig};

fn systems() -> [SystemKind; 2] {
    [
        SystemKind::Apu,
        SystemKind::Discrete(DiscreteSpec::mi200_class()),
    ]
}

fn env_with_xnack(is_apu: bool, xnack: bool) -> RunEnv {
    RunEnv {
        is_apu,
        hsa_xnack: xnack,
        ompx_apu_maps: false,
        eager_maps: false,
        requires_usm: false,
    }
}

#[test]
fn with_xnack_every_config_engages_as_requested() {
    for system in systems() {
        for config in RuntimeConfig::ALL {
            let rt = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
                .config(config)
                .system(system.clone())
                .env(env_with_xnack(system.is_apu(), true))
                .build()
                .unwrap();
            assert_eq!(rt.config(), config, "{system:?}");
            assert_eq!(rt.degraded_from(), None, "{system:?} {config}");
        }
    }
}

#[test]
fn without_xnack_only_usm_has_no_fallback() {
    for system in systems() {
        for config in RuntimeConfig::ALL {
            let result = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
                .config(config)
                .system(system.clone())
                .env(env_with_xnack(system.is_apu(), false))
                .build();
            match config {
                // Raw host pointers with no maps: nothing to degrade to.
                RuntimeConfig::UnifiedSharedMemory => {
                    assert!(
                        matches!(result.err(), Some(OmpError::UnsupportedDeployment { .. })),
                        "{system:?}: USM without XNACK must be unsupported"
                    );
                }
                // Implicit Zero-Copy falls back to Copy data handling.
                RuntimeConfig::ImplicitZeroCopy => {
                    let rt = result.unwrap();
                    assert_eq!(rt.config(), RuntimeConfig::LegacyCopy, "{system:?}");
                    assert_eq!(
                        rt.degraded_from(),
                        Some(RuntimeConfig::ImplicitZeroCopy),
                        "{system:?}"
                    );
                    assert_eq!(rt.ledger().degradations, 1);
                }
                // Copy and Eager Maps never needed XNACK.
                RuntimeConfig::LegacyCopy | RuntimeConfig::EagerMaps => {
                    let rt = result.unwrap();
                    assert_eq!(rt.config(), config, "{system:?}");
                    assert_eq!(rt.degraded_from(), None, "{system:?} {config}");
                }
            }
        }
    }
}

#[test]
fn env_resolution_matrix_selects_expected_configs() {
    // Environment-only resolution (no explicit config): the startup logic
    // the real stack runs. Selection is not recorded as degradation.
    let cases = [
        // (is_apu, xnack, apu_maps, eager, usm) -> expected
        (
            true,
            true,
            false,
            false,
            false,
            Some(RuntimeConfig::ImplicitZeroCopy),
        ),
        (
            true,
            false,
            false,
            false,
            false,
            Some(RuntimeConfig::LegacyCopy),
        ),
        (
            false,
            true,
            false,
            false,
            false,
            Some(RuntimeConfig::LegacyCopy),
        ),
        (
            false,
            false,
            false,
            false,
            false,
            Some(RuntimeConfig::LegacyCopy),
        ),
        (
            true,
            true,
            false,
            true,
            false,
            Some(RuntimeConfig::EagerMaps),
        ),
        (
            true,
            true,
            false,
            false,
            true,
            Some(RuntimeConfig::UnifiedSharedMemory),
        ),
        (true, false, false, false, true, None),
        (false, false, false, false, true, None),
    ];
    for (is_apu, xnack, apu_maps, eager, usm, expected) in cases {
        let env = RunEnv {
            is_apu,
            hsa_xnack: xnack,
            ompx_apu_maps: apu_maps,
            eager_maps: eager,
            requires_usm: usm,
        };
        let result = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
            .env(env)
            .build();
        match expected {
            Some(config) => {
                let rt = result.unwrap();
                assert_eq!(rt.config(), config, "env {env:?}");
                assert_eq!(rt.degraded_from(), None, "selection is not degradation");
                // The system kind follows `is_apu`.
                assert_eq!(rt.mem().kind().is_apu(), is_apu, "env {env:?}");
            }
            None => {
                assert!(
                    matches!(result.err(), Some(OmpError::UnsupportedDeployment { .. })),
                    "env {env:?} should be unsupported"
                );
            }
        }
    }
}

#[test]
fn faulty_runs_respect_the_same_matrix() {
    use mi300a_zerocopy::sim::{FaultPlan, FaultSpec};
    // A fault plan declaring XNACK unavailable composes with the matrix the
    // same way a `HSA_XNACK=0` environment does.
    let plan = FaultPlan::new(1, FaultSpec::none()).with_xnack_unavailable(true);
    let rt = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
        .config(RuntimeConfig::ImplicitZeroCopy)
        .fault_plan(plan.clone())
        .build()
        .unwrap();
    assert_eq!(rt.config(), RuntimeConfig::LegacyCopy);
    assert_eq!(rt.degraded_from(), Some(RuntimeConfig::ImplicitZeroCopy));

    let result = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
        .config(RuntimeConfig::UnifiedSharedMemory)
        .fault_plan(plan)
        .build();
    assert!(matches!(
        result.err(),
        Some(OmpError::UnsupportedDeployment { .. })
    ));
}
