//! Multi-tenant soak: many concurrent data environments over one shared
//! sharded mapping table. For every configuration and tenant count, each
//! tenant's observable results — memory digest, ledger, makespan,
//! diagnostics — must be byte-identical to running that tenant serially
//! alone in its own pool, under whatever interleaving the OS scheduler
//! produces, and the shared table must drain to zero live mappings.
//!
//! Programs are proptest-generated op streams interpreted against a small
//! validity model (exit only what was entered), in the style of
//! `tests/fault_soak.rs`; every tenant carries its derived slice of a
//! seeded fault plan, so recovery activity is soaked concurrently too.

use mi300a_zerocopy::hsa::Topology;
use mi300a_zerocopy::mem::{AddrRange, CostModel};
use mi300a_zerocopy::omp::{MapEntry, OmpRuntime, RuntimeConfig, TargetRegion, Tenant, TenantPool};
use mi300a_zerocopy::sim::{FaultPlan, FaultSpec, VirtDuration};
use proptest::prelude::*;

const N: usize = 64;

fn pool(config: RuntimeConfig) -> TenantPool {
    TenantPool::new(
        OmpRuntime::builder(CostModel::mi300a(), Topology::default())
            .config(config)
            .sanitize(true)
            .fault_plan(FaultPlan::new(0x50AC, FaultSpec::soak())),
    )
}

fn write_f64s(rt: &mut OmpRuntime, addr: mi300a_zerocopy::mem::VirtAddr, vals: &[f64]) {
    let mut raw = Vec::new();
    for v in vals {
        raw.extend_from_slice(&v.to_le_bytes());
    }
    rt.mem_mut().cpu_write(addr, &raw).unwrap();
}

/// Drive one tenant through the op stream. Ops are interpreted against a
/// tiny validity model so any byte stream is a legal OpenMP program.
fn run_ops(rt: &mut OmpRuntime, ops: &[u8]) {
    let bytes = (N * 8) as u64;
    let a = rt.host_alloc(0, bytes).unwrap();
    let b = rt.host_alloc(0, bytes).unwrap();
    let ra = AddrRange::new(a, bytes);
    let rb = AddrRange::new(b, bytes);
    write_f64s(rt, a, &(0..N).map(|i| 1.0 + i as f64).collect::<Vec<_>>());
    write_f64s(rt, b, &vec![2.0; N]);
    let mut entered = false;
    for (step, &op) in ops.iter().enumerate() {
        match op % 4 {
            0 | 3 => {
                let region = TargetRegion::new("soak_axpy", VirtDuration::from_micros(15))
                    .map(MapEntry::tofrom(ra))
                    .body(move |ctx| {
                        let v = ctx.read_f64s(ctx.arg(0), N)?;
                        let out: Vec<f64> = v.iter().map(|x| x * 0.5 + step as f64).collect();
                        ctx.write_f64s(ctx.arg(0), &out)
                    });
                rt.target(0, region).unwrap();
            }
            1 => {
                if entered {
                    let region = TargetRegion::new("soak_touch", VirtDuration::from_micros(10))
                        .map(MapEntry::to(rb));
                    rt.target(0, region).unwrap();
                } else {
                    rt.target_enter_data(0, &[MapEntry::to(rb)]).unwrap();
                    entered = true;
                }
            }
            2 => {
                if entered {
                    rt.target_exit_data(0, &[MapEntry::from(rb)], false)
                        .unwrap();
                    entered = false;
                }
            }
            _ => unreachable!(),
        }
    }
    if entered {
        rt.target_exit_data(0, &[MapEntry::from(rb)], false)
            .unwrap();
    }
    assert_eq!(rt.live_mappings(), 0, "tenant leaked mappings");
}

/// Everything a tenant can observe about its own run, as one string.
fn fingerprint(t: Tenant) -> String {
    let rt = t.into_runtime();
    let digest = rt.memory_digest();
    let report = rt.finish();
    let diags = report
        .sanitizer
        .map(|s| {
            s.diagnostics
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(";")
        })
        .unwrap_or_default();
    format!(
        "{digest:016x}|{}|{:?}|{diags}",
        report.makespan.as_nanos(),
        report.ledger,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn tenants_are_isolated_under_any_schedule(
        ops in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        for config in RuntimeConfig::ALL {
            // The serial reference: each tenant id run alone in its own
            // pool. Computed once per config — the same solo bytes are the
            // contract for every tenant count below.
            let solo: Vec<String> = (0..8u32)
                .map(|id| {
                    let mut t = pool(config).tenant(id).unwrap();
                    run_ops(&mut t, &ops);
                    fingerprint(t)
                })
                .collect();
            for &tenants in &[1u32, 4, 8] {
                let p = pool(config);
                let concurrent: Vec<String> = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..tenants)
                        .map(|id| {
                            let p = &p;
                            let ops = &ops;
                            s.spawn(move || {
                                let mut t = p.tenant(id).unwrap();
                                run_ops(&mut t, ops);
                                fingerprint(t)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                prop_assert_eq!(p.live_total(), 0, "config {}: shared table must drain", config);
                for id in 0..tenants as usize {
                    prop_assert_eq!(
                        &concurrent[id],
                        &solo[id],
                        "config {} tenant {}/{} diverged from its solo run",
                        config,
                        id,
                        tenants
                    );
                }
            }
        }
    }
}
