//! End-to-end pipeline tests spanning all crates: workload -> runtime ->
//! HSA layer -> scheduler -> analysis, plus consistency invariants between
//! layers (recorded call counts vs schedule aggregation, ledger vs memory
//! statistics).

use mi300a_zerocopy::analysis::{measure, measure_all_configs, ExperimentConfig};
use mi300a_zerocopy::hsa::{HsaApiKind, Topology};
use mi300a_zerocopy::mem::CostModel;
use mi300a_zerocopy::omp::{OmpRuntime, RuntimeConfig};
use mi300a_zerocopy::sim::{NoiseModel, VirtDuration};
use mi300a_zerocopy::workloads::spec::{Ep, Lbm, SpC, Stencil};
use mi300a_zerocopy::workloads::{NioSize, QmcPack, Workload};

#[test]
fn api_stats_copy_counts_match_ledger() {
    // Every ledger copy corresponds to exactly one memory_async_copy call
    // (plus the 3 device-init copies).
    let exp = ExperimentConfig::noiseless();
    let w = QmcPack::nio(NioSize { factor: 2 }).with_steps(25);
    let m = measure(&w, RuntimeConfig::LegacyCopy, 2, &exp).unwrap();
    let api_copies = m.report.api_stats.get(HsaApiKind::MemoryAsyncCopy).calls;
    assert_eq!(api_copies, m.report.ledger.copies + 3);
}

#[test]
fn bytes_copied_agree_between_layers() {
    let exp = ExperimentConfig::noiseless();
    let w = Lbm::scaled(0.03);
    let m = measure(&w, RuntimeConfig::LegacyCopy, 1, &exp).unwrap();
    // Memory subsystem counted the same bytes as the runtime ledger, plus
    // the fixed 3 x 64 KiB device-init transfers.
    assert_eq!(
        m.report.mem_stats.bytes_copied,
        m.report.ledger.bytes_copied + 3 * 64 * 1024
    );
}

#[test]
fn fault_accounting_agrees_between_layers() {
    let exp = ExperimentConfig::noiseless();
    let w = Stencil::scaled(0.03);
    let m = measure(&w, RuntimeConfig::ImplicitZeroCopy, 1, &exp).unwrap();
    assert_eq!(
        m.report.mem_stats.xnack_replayed_pages,
        m.report.ledger.replayed_pages
    );
    assert_eq!(
        m.report.mem_stats.xnack_zero_fill_pages,
        m.report.ledger.zero_filled_pages
    );
}

#[test]
fn eager_maps_runs_entirely_without_xnack() {
    // Eager Maps must complete with XNACK disabled: every GPU access goes
    // through prefaulted translations.
    let exp = ExperimentConfig::noiseless();
    for w in [
        Box::new(Stencil::scaled(0.03)) as Box<dyn Workload>,
        Box::new(Ep::scaled(0.05)),
        Box::new(SpC::scaled(0.05)),
    ] {
        let m = measure(w.as_ref(), RuntimeConfig::EagerMaps, 1, &exp).unwrap();
        assert_eq!(m.report.mem_stats.xnack_pages(), 0, "{}", w.name());
        assert!(m.report.mem_stats.prefault_calls > 0);
    }
}

#[test]
fn makespan_dominates_every_component() {
    let exp = ExperimentConfig::noiseless();
    let w = QmcPack::nio(NioSize { factor: 4 }).with_steps(40);
    for config in RuntimeConfig::ALL {
        let m = measure(&w, config, 2, &exp).unwrap();
        let makespan = m.report.makespan;
        // No resource can be busy longer than capacity * makespan.
        for rs in m.report.schedule.resource_stats() {
            let budget = makespan * rs.capacity as u64;
            assert!(
                rs.busy <= budget,
                "{config}: resource {} busy {} exceeds budget {budget}",
                rs.name,
                rs.busy
            );
        }
        // Kernel compute happens on the GPU, so it bounds below GPU busy.
        let gpu = m
            .report
            .schedule
            .resource_stats()
            .iter()
            .find(|r| r.name == "gpu")
            .unwrap();
        assert!(gpu.busy >= m.report.ledger.kernel_compute);
    }
}

#[test]
fn noise_produces_paper_like_cov() {
    let exp = ExperimentConfig {
        repeats: 8,
        noise: NoiseModel::os_interference(),
        ..ExperimentConfig::default()
    };
    let w = Ep::scaled(0.03);
    let m = measure(&w, RuntimeConfig::LegacyCopy, 1, &exp).unwrap();
    // The paper reports CoV <= 0.03 for SPECaccel runs.
    assert!(m.cov() > 0.0);
    assert!(m.cov() <= 0.05, "cov {}", m.cov());
}

#[test]
fn thread_scaling_helps_zero_copy_more_than_copy() {
    // The Fig. 3 mechanism end to end: raising the thread count increases
    // the Copy/zero-copy gap (runtime-stack serialization).
    let exp = ExperimentConfig::noiseless();
    let w = QmcPack::nio(NioSize { factor: 2 }).with_steps(60);
    let ratio_at = |threads: usize| {
        let ms = measure_all_configs(&w, threads, &exp).unwrap();
        let copy = ms[0].median().as_nanos() as f64;
        let izc = ms
            .iter()
            .find(|m| m.config == RuntimeConfig::ImplicitZeroCopy)
            .unwrap()
            .median()
            .as_nanos() as f64;
        copy / izc
    };
    assert!(ratio_at(8) > ratio_at(1));
}

#[test]
fn runtime_rejects_threads_overflow_gracefully() {
    // Threads beyond the recorded set still schedule (lazy stream growth).
    let mut rt = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
        .config(RuntimeConfig::ImplicitZeroCopy)
        .threads(3)
        .build()
        .unwrap();
    rt.host_compute(2, VirtDuration::from_micros(10));
    let report = rt.finish();
    assert!(report.makespan >= VirtDuration::from_micros(10));
}

#[test]
fn replicated_finish_matches_single_finish() {
    let build = || {
        let mut rt = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
            .config(RuntimeConfig::LegacyCopy)
            .build()
            .unwrap();
        Ep::scaled(0.02).run(&mut rt).unwrap();
        rt
    };
    let single = build().finish();
    let (first, makespans) =
        build().finish_replicated(&mi300a_zerocopy::sim::RunOptions::noiseless(), &[0, 1, 2]);
    assert_eq!(single.makespan, first.makespan);
    // Noiseless: every replica identical.
    assert!(makespans.iter().all(|&m| m == single.makespan));
}
