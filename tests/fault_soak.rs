//! Fault-injection soak: every configuration, several fault seeds, one
//! multi-phase program. Each faulty run must (a) produce numeric results
//! identical to the healthy run, (b) finish with zero live mappings and no
//! outstanding nowait regions, and (c) replay deterministically per seed.
//!
//! The default profile is quick (3 seeds); set `FAULT_SOAK_SEEDS=n` for a
//! longer soak.

use mi300a_zerocopy::hsa::Topology;
use mi300a_zerocopy::mem::{AddrRange, CostModel, DiscreteSpec, SystemKind, VirtAddr};
use mi300a_zerocopy::omp::{MapEntry, OmpRuntime, RunReport, RuntimeConfig, TargetRegion};
use mi300a_zerocopy::sim::{FaultPlan, FaultSpec, VirtDuration};

const N: usize = 256;

fn seeds() -> Vec<u64> {
    let n = std::env::var("FAULT_SOAK_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(3);
    (0..n).map(|i| 0x50AC + i * 7).collect()
}

fn write_f64s(rt: &mut OmpRuntime, addr: VirtAddr, vals: &[f64]) {
    let mut raw = Vec::new();
    for v in vals {
        raw.extend_from_slice(&v.to_le_bytes());
    }
    rt.mem_mut().cpu_write(addr, &raw).unwrap();
}

fn read_f64s(rt: &OmpRuntime, addr: VirtAddr, n: usize) -> Vec<f64> {
    let mut raw = vec![0u8; n * 8];
    rt.mem().cpu_read(addr, &mut raw).unwrap();
    raw.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// A small but multi-phase program: structured data region, refcounted
/// remaps, a declare-target global, `target nowait` + taskwait, explicit
/// device memory, and update-from transfers. Returns the numeric result
/// and the finished report.
fn run_program(mut rt: OmpRuntime) -> (Vec<f64>, RunReport) {
    let bytes = (N * 8) as u64;
    let a = rt.host_alloc(0, bytes).unwrap();
    let b = rt.host_alloc(0, bytes).unwrap();
    let scale = rt.declare_target_global(0, 8).unwrap();
    write_f64s(&mut rt, a, &vec![1.0; N]);
    write_f64s(&mut rt, b, &(0..N).map(|i| i as f64).collect::<Vec<_>>());
    let sh = rt.global_host(scale).unwrap();
    write_f64s(&mut rt, sh.start, &[3.0]);

    let ra = AddrRange::new(a, bytes);
    let rb = AddrRange::new(b, bytes);
    rt.target_enter_data(0, &[MapEntry::to(rb)]).unwrap();
    for step in 0..4 {
        let region = TargetRegion::new("axpy_step", VirtDuration::from_micros(20))
            .map(MapEntry::tofrom(ra))
            .map(MapEntry::to(rb))
            .global(scale)
            .body(move |ctx| {
                let av = ctx.read_f64s(ctx.arg(0), N)?;
                let bv = ctx.read_f64s(ctx.arg(1), N)?;
                let s = ctx.read_f64s(ctx.global(0), 1)?[0];
                let out: Vec<f64> = av
                    .iter()
                    .zip(&bv)
                    .map(|(x, y)| x + y / (s + step as f64))
                    .collect();
                ctx.write_f64s(ctx.arg(0), &out)
            });
        if step % 2 == 0 {
            rt.target(0, region).unwrap();
        } else {
            rt.target_nowait(0, region).unwrap();
            rt.taskwait(0).unwrap();
        }
    }
    rt.target_exit_data(0, &[MapEntry::alloc(rb)], false)
        .unwrap();

    // Explicit device memory round-trip.
    let dev = rt.omp_target_alloc(0, bytes).unwrap();
    rt.omp_target_memcpy(0, dev, a, bytes).unwrap();
    rt.omp_target_memcpy(0, a, dev, bytes).unwrap();
    rt.omp_target_free(0, dev).unwrap();

    let result = read_f64s(&rt, a, N);
    assert_eq!(rt.live_mappings(), 0, "leaked mappings");
    assert_eq!(rt.pending_nowaits(), 0, "leaked nowait regions");
    (result, rt.finish())
}

fn apu_rt(config: RuntimeConfig, plan: Option<FaultPlan>) -> OmpRuntime {
    let mut b = OmpRuntime::builder(CostModel::mi300a(), Topology::default()).config(config);
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    b.build().unwrap()
}

#[test]
fn soak_all_configs_and_seeds_match_healthy_results() {
    for config in RuntimeConfig::ALL {
        let (healthy, healthy_report) = run_program(apu_rt(config, None));
        assert_eq!(healthy_report.fault_stats.total_injected(), 0);
        assert!(!healthy_report.ledger.has_recovery_activity());
        for seed in seeds() {
            let plan = FaultPlan::new(seed, FaultSpec::soak());
            let (faulty, report) = run_program(apu_rt(config, Some(plan)));
            assert_eq!(
                faulty, healthy,
                "config {config} seed {seed}: faulty run diverged from healthy"
            );
            // Every injected episode must have been resolved by recovery.
            assert_eq!(
                report.ledger.recoveries as usize,
                report.recovery_log.len(),
                "config {config} seed {seed}"
            );
        }
    }
}

#[test]
fn soak_runs_replay_deterministically_per_seed() {
    for config in [RuntimeConfig::LegacyCopy, RuntimeConfig::ImplicitZeroCopy] {
        for seed in seeds() {
            let (r1, rep1) = run_program(apu_rt(
                config,
                Some(FaultPlan::new(seed, FaultSpec::soak())),
            ));
            let (r2, rep2) = run_program(apu_rt(
                config,
                Some(FaultPlan::new(seed, FaultSpec::soak())),
            ));
            assert_eq!(r1, r2);
            assert_eq!(rep1.makespan, rep2.makespan, "config {config} seed {seed}");
            assert_eq!(
                rep1.fault_stats.total_injected(),
                rep2.fault_stats.total_injected()
            );
            assert_eq!(rep1.recovery_log, rep2.recovery_log);
        }
    }
}

#[test]
fn soak_disabled_faults_equal_no_plan() {
    // A plan with all-zero rates must be byte-equivalent to no plan at all.
    let (healthy, healthy_report) = run_program(apu_rt(RuntimeConfig::ImplicitZeroCopy, None));
    let plan = FaultPlan::new(9, FaultSpec::none());
    let (nofault, report) = run_program(apu_rt(RuntimeConfig::ImplicitZeroCopy, Some(plan)));
    assert_eq!(healthy, nofault);
    assert_eq!(healthy_report.makespan, report.makespan);
    assert_eq!(report.fault_stats.total_injected(), 0);
    assert!(report.recovery_log.is_empty());
}

#[test]
fn soak_discrete_system_with_faults_recovers() {
    // Discrete mode exercises the pool-allocation and DMA sites hardest:
    // every map costs a real VRAM allocation plus transfers.
    let spec = DiscreteSpec::mi200_class();
    let healthy = {
        let rt = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
            .config(RuntimeConfig::LegacyCopy)
            .system(SystemKind::Discrete(spec.clone()))
            .build()
            .unwrap();
        run_program(rt).0
    };
    for seed in seeds() {
        let rt = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
            .config(RuntimeConfig::LegacyCopy)
            .system(SystemKind::Discrete(spec.clone()))
            .fault_plan(FaultPlan::new(seed, FaultSpec::soak()))
            .build()
            .unwrap();
        let (faulty, report) = run_program(rt);
        assert_eq!(faulty, healthy, "seed {seed}");
        assert!(report.fault_stats.total_injected() > 0 || report.recovery_log.is_empty());
    }
}

#[test]
fn soak_mid_run_xnack_loss_is_absorbed() {
    for config in [
        RuntimeConfig::ImplicitZeroCopy,
        RuntimeConfig::UnifiedSharedMemory,
    ] {
        let healthy = run_program(apu_rt(config, None)).0;
        let plan = FaultPlan::new(5, FaultSpec::none()).with_xnack_flip_after(2);
        let (faulty, report) = run_program(apu_rt(config, Some(plan)));
        assert_eq!(faulty, healthy, "config {config}");
        assert_eq!(report.fault_stats.xnack_flips, 1);
        assert_eq!(report.ledger.degradations, 1);
        assert!(report.ledger.recovery_prefaults > 0);
    }
}
