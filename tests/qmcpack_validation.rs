//! Numerical validation of the flagship workload: mini-QMCPack with real
//! kernel bodies must produce bit-identical results under all four runtime
//! configurations and any thread count — the paper's semantic-equivalence
//! claim, checked on the actual application pattern rather than synthetic
//! programs.

use mi300a_zerocopy::hsa::Topology;
use mi300a_zerocopy::mem::CostModel;
use mi300a_zerocopy::omp::{OmpRuntime, RuntimeConfig};
use mi300a_zerocopy::workloads::{NioSize, QmcPack};

fn probe(config: RuntimeConfig, threads: usize, steps: usize) -> Vec<f64> {
    let mut rt = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
        .config(config)
        .threads(threads)
        .build()
        .unwrap();
    let w = QmcPack::nio(NioSize { factor: 2 })
        .with_steps(steps)
        .with_validation();
    let out = w.run_with_probe(&mut rt).unwrap();
    assert_eq!(rt.live_mappings(), 0);
    out
}

#[test]
fn qmcpack_results_identical_across_configs() {
    for threads in [1usize, 3] {
        let reference = probe(RuntimeConfig::LegacyCopy, threads, 12);
        assert_eq!(reference.len(), threads * 8);
        // The chain actually computed something.
        assert!(reference.iter().any(|&v| v != 0.0));
        for config in RuntimeConfig::ZERO_COPY {
            let got = probe(config, threads, 12);
            assert_eq!(reference, got, "{config} with {threads} threads diverged");
        }
    }
}

#[test]
fn qmcpack_results_depend_on_steps_and_thread() {
    // Sanity that the probe is sensitive: different step counts give
    // different numbers, and each thread's crowd differs.
    let a = probe(RuntimeConfig::ImplicitZeroCopy, 2, 6);
    let b = probe(RuntimeConfig::ImplicitZeroCopy, 2, 7);
    assert_ne!(a, b);
    assert_ne!(a[..8], a[8..], "crowds should differ between threads");
}

#[test]
fn validation_mode_costs_match_modeled_mode() {
    // Bodies are functional only: the virtual-time results are identical
    // with and without validation.
    let run = |validate: bool| {
        let mut rt = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
            .config(RuntimeConfig::LegacyCopy)
            .threads(2)
            .build()
            .unwrap();
        let mut w = QmcPack::nio(NioSize { factor: 2 }).with_steps(10);
        w.validate = validate;
        w.run_with_probe(&mut rt).unwrap();
        rt.finish().makespan
    };
    assert_eq!(run(true), run(false));
}
