//! The paper's §V-A.3 scaling analysis between S2 and S24:
//!
//! "Total kernel execution times reported by rocprof for Copy and Implicit
//! Zero-Copy configurations increases 10 times between S2 and S24. Total
//! HSA call execution time increases 5X for Copy and 10X for Implicit
//! Zero-Copy, although the latter has a much smaller total... increases in
//! problem size reflects in memory copy overheads (for Copy) about at half
//! rate than kernel execution time."

use mi300a_zerocopy::analysis::kernels::total_kernel_time;
use mi300a_zerocopy::hsa::Topology;
use mi300a_zerocopy::mem::CostModel;
use mi300a_zerocopy::omp::{OmpRuntime, RunReport, RuntimeConfig};
use mi300a_zerocopy::workloads::{NioSize, QmcPack, Workload};

fn traced_run(factor: u32, config: RuntimeConfig) -> RunReport {
    let mut rt = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
        .config(config)
        .build()
        .unwrap();
    rt.set_kernel_trace(true);
    QmcPack::nio(NioSize { factor })
        .with_steps(100)
        .run(&mut rt)
        .unwrap();
    rt.finish()
}

#[test]
fn kernel_time_grows_an_order_of_magnitude_s2_to_s24() {
    for config in [RuntimeConfig::LegacyCopy, RuntimeConfig::ImplicitZeroCopy] {
        let s2 = traced_run(2, config);
        let s24 = traced_run(24, config);
        let ratio = total_kernel_time(&s24.kernel_trace).as_nanos() as f64
            / total_kernel_time(&s2.kernel_trace).as_nanos() as f64;
        // The paper reports ~10x; our kernels scale with the S factor
        // (24/2 = 12), dampened by the fixed kernel-launch floor.
        assert!(
            (7.0..15.0).contains(&ratio),
            "{config}: kernel-time ratio S24/S2 = {ratio:.1}, expected ~10x"
        );
    }
}

#[test]
fn copy_overheads_grow_at_about_half_rate_of_kernels() {
    let s2 = traced_run(2, RuntimeConfig::LegacyCopy);
    let s24 = traced_run(24, RuntimeConfig::LegacyCopy);

    let kernel_ratio = total_kernel_time(&s24.kernel_trace).as_nanos() as f64
        / total_kernel_time(&s2.kernel_trace).as_nanos() as f64;
    let mm_ratio = s24.ledger.mm_total().as_nanos() as f64 / s2.ledger.mm_total().as_nanos() as f64;

    // "about at half rate": the copy-overhead growth exponent is about half
    // the kernel growth exponent (sqrt scaling of per-step buffers).
    assert!(
        mm_ratio < kernel_ratio * 0.6,
        "MM should grow much slower: MM x{mm_ratio:.1} vs kernels x{kernel_ratio:.1}"
    );
    assert!(
        mm_ratio > 1.5,
        "MM still grows with problem size: x{mm_ratio:.1}"
    );

    // Consequence (the paper's conclusion): kernel time dominates at large
    // sizes, so the zero-copy advantage shrinks — checked in fig4 tests.
    let kernel_share_s2 =
        total_kernel_time(&s2.kernel_trace).as_nanos() as f64 / s2.makespan.as_nanos() as f64;
    let kernel_share_s24 =
        total_kernel_time(&s24.kernel_trace).as_nanos() as f64 / s24.makespan.as_nanos() as f64;
    assert!(kernel_share_s24 > kernel_share_s2);
}

#[test]
fn izc_total_hsa_time_is_much_smaller_but_scales_faster() {
    // Paper: Copy's HSA time grows 5x, IZC's 10x — but from a far smaller
    // base (IZC's HSA time is dominated by kernel waits, which scale with
    // kernel time; Copy's is dominated by copies, which scale at half rate).
    let total_hsa = |r: &RunReport| r.api_stats.total_calls();
    let copy_s2 = traced_run(2, RuntimeConfig::LegacyCopy);
    let izc_s2 = traced_run(2, RuntimeConfig::ImplicitZeroCopy);
    // Call *counts* are size-independent (same program structure)...
    let copy_s24 = traced_run(24, RuntimeConfig::LegacyCopy);
    assert_eq!(total_hsa(&copy_s2), total_hsa(&copy_s24));
    // ...but Copy makes several times more calls than IZC at any size.
    assert!(total_hsa(&copy_s2) > 3 * total_hsa(&izc_s2));
}
