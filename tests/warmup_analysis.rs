//! End-to-end reproduction of the paper's §V-A.4 launch-indexed analysis:
//! "the advantage of Eager Maps over Implicit Zero-Copy is due to increased
//! TLB hits when host allocated memory is first touched by the GPU ...
//! for the first hundred kernel launches the difference is in the order of
//! tens of milliseconds. After the initial phase, the difference lowers."

use mi300a_zerocopy::analysis::warmup::WarmupComparison;
use mi300a_zerocopy::hsa::Topology;
use mi300a_zerocopy::mem::CostModel;
use mi300a_zerocopy::omp::{KernelTraceEntry, OmpRuntime, RuntimeConfig};
use mi300a_zerocopy::sim::VirtDuration;
use mi300a_zerocopy::workloads::{NioSize, QmcPack, Workload};

fn traced_run(config: RuntimeConfig) -> Vec<KernelTraceEntry> {
    let mut rt = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
        .config(config)
        .build()
        .unwrap();
    rt.set_kernel_trace(true);
    QmcPack::nio(NioSize { factor: 8 })
        .with_steps(100)
        .run(&mut rt)
        .unwrap();
    rt.finish().kernel_trace
}

#[test]
fn eager_maps_wins_the_warmup_then_stalls_vanish() {
    let izc = traced_run(RuntimeConfig::ImplicitZeroCopy);
    let em = traced_run(RuntimeConfig::EagerMaps);
    assert_eq!(izc.len(), em.len(), "same program, same launch count");

    let cmp = WarmupComparison::new(&izc, &em);

    // Within the first hundred launches IZC accumulates first-touch stalls
    // that EM avoided: EM is ahead on kernel-side time.
    let early = cmp.advantage_at(99.min(cmp.launches() - 1));
    assert!(
        early > 0,
        "Eager Maps should lead after warm-up, advantage {early}ns"
    );

    // After the initial phase the per-launch difference settles (faults are
    // one-off per page; both configurations then run stall-free kernels).
    let settled = cmp
        .settled_after(VirtDuration::from_micros(50))
        .expect("traces settle after warm-up");
    assert!(
        settled < 150,
        "kernel-side differences should settle within the warm-up, got {settled}"
    );

    // And the advantage stops growing: kernel-side EM lead in the second
    // half of the run is essentially flat.
    let mid = cmp.advantage_at(cmp.launches() / 2);
    let last = cmp.advantage_at(cmp.launches() - 1);
    let growth = (last - mid).abs();
    assert!(
        growth < early.max(1) / 5,
        "advantage should stop growing after warm-up: mid {mid} last {last}"
    );

    // The paper's point: EM's *kernel-side* win is bounded (a fraction of a
    // second), while its prefault syscalls accrue on the host side — which
    // is why EM trails IZC overall at small sizes. Confirm the host side:
    let mut izc_rt = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
        .config(RuntimeConfig::ImplicitZeroCopy)
        .build()
        .unwrap();
    let w = QmcPack::nio(NioSize { factor: 8 }).with_steps(100);
    w.run(&mut izc_rt).unwrap();
    let izc_report = izc_rt.finish();
    let mut em_rt = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
        .config(RuntimeConfig::EagerMaps)
        .build()
        .unwrap();
    w.run(&mut em_rt).unwrap();
    let em_report = em_rt.finish();
    assert!(em_report.ledger.mm_prefault > VirtDuration::ZERO);
    assert_eq!(izc_report.ledger.mm_prefault, VirtDuration::ZERO);
    // Kernel-side: EM total is smaller (no MI)...
    assert!(em_report.ledger.mi_total() == VirtDuration::ZERO);
    assert!(izc_report.ledger.mi_total() > VirtDuration::ZERO);
    // ...but its host-side prefault total exceeds IZC's one-off MI, so IZC
    // wins overall at this size — the paper's QMCPack conclusion.
    assert!(em_report.ledger.mm_prefault > izc_report.ledger.mi_total());
    assert!(em_report.makespan > izc_report.makespan);
}

#[test]
fn chrome_trace_of_a_run_is_loadable_json_shape() {
    let mut rt = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
        .config(RuntimeConfig::LegacyCopy)
        .threads(2)
        .build()
        .unwrap();
    QmcPack::nio(NioSize { factor: 2 })
        .with_steps(5)
        .run(&mut rt)
        .unwrap();
    let report = rt.finish();
    let json = mi300a_zerocopy::analysis::timeline::chrome_trace(&report.schedule);
    assert!(json.starts_with('['));
    assert!(json.trim_end().ends_with(']'));
    assert!(json.contains("hsa_amd_memory_async_copy"));
    assert!(json.contains("\"tid\":1"));
    // Balanced braces: every event object closes.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}
