//! Calibration tests: the reproduced tables and figures must land in the
//! paper's bands at reference scale. These pin the headline results so that
//! refactoring the runtime or cost model cannot silently break the
//! reproduction (see EXPERIMENTS.md for the paper-vs-measured record).

use mi300a_zerocopy::analysis::paper::{qmc_sweep, spec_suite, table3, PaperConfig};
use mi300a_zerocopy::analysis::{
    measure_all_configs, order_of_magnitude_us, ratio, ExperimentConfig,
};
use mi300a_zerocopy::omp::RuntimeConfig;
use mi300a_zerocopy::workloads::NioSize;

/// Paper Table II with tolerance bands (ratio, +-rel).
const TABLE2_BANDS: [(&str, [f64; 3]); 5] = [
    // (benchmark, [Implicit Z-C, USM, Eager Maps]) paper values
    ("403.stencil", [0.99, 0.99, 0.98]),
    ("404.lbm", [1.05, 1.043, 1.025]),
    ("452.ep", [0.89, 0.89, 0.99]),
    ("457.spC", [7.80, 7.61, 8.10]),
    ("470.bt", [4.88, 4.77, 5.10]),
];

#[test]
fn table2_ratios_match_paper_bands() {
    let exp = ExperimentConfig::noiseless();
    for (name, paper) in TABLE2_BANDS {
        let w = spec_suite(1.0)
            .into_iter()
            .find(|w| w.name() == name)
            .expect("benchmark exists");
        let ms = measure_all_configs(w.as_ref(), 1, &exp).unwrap();
        let copy = &ms[0];
        for (ci, config) in RuntimeConfig::ZERO_COPY.iter().enumerate() {
            let m = ms.iter().find(|m| m.config == *config).unwrap();
            let r = ratio(copy, m);
            let expected = paper[ci];
            // Band: 12% relative for the big ratios, 0.05 absolute for the
            // near-unity ones (the paper's own CoV is 3%).
            let ok = if expected > 2.0 {
                (r / expected - 1.0).abs() < 0.12
            } else {
                (r - expected).abs() < 0.06
            };
            assert!(
                ok,
                "{name} {config}: measured {r:.3}, paper {expected} (out of band)"
            );
        }
    }
}

#[test]
fn table3_orders_match_paper_exactly() {
    let cfg = PaperConfig {
        spec_scale: 1.0,
        ..PaperConfig::quick()
    };
    let t = table3(&cfg).unwrap();
    // Rows: Copy, Implicit Z-C or USM, Eager Maps.
    // Columns: config, stencil MM, stencil MI, ep MM, ep MI.
    let expect = [
        ["Copy", "O(10^5)", "O(0)", "O(10^5)", "O(0)"],
        ["Implicit Z-C or USM", "O(0)", "O(10^6)", "O(0)", "O(10^6)"],
        ["Eager Maps", "O(10^4)", "O(0)", "O(10^5)", "O(0)"],
    ];
    for (row, exp_row) in t.rows.iter().zip(expect) {
        assert_eq!(row.as_slice(), exp_row.as_slice(), "Table III row mismatch");
    }
}

#[test]
fn qmcpack_ratio_trends_match_figures_3_and_4() {
    // Reduced sweep (3 sizes x 2 thread counts), noiseless for determinism.
    let cfg = PaperConfig {
        exp: ExperimentConfig::noiseless(),
        qmc_steps: 150,
        qmc_repeats: 1,
        sizes: vec![
            NioSize { factor: 2 },
            NioSize { factor: 16 },
            NioSize { factor: 128 },
        ],
        threads: vec![1, 8],
        spec_scale: 0.05,
        table1_steps: 100,
        jobs: 0,
    };
    let cells = qmc_sweep(&cfg).unwrap();
    let get = |f: u32, t: usize| {
        cells
            .iter()
            .find(|c| c.size.factor == f && c.threads == t)
            .unwrap()
    };

    // Zero-copy always beats Copy for QMCPack (abstract: 1.2x-2.3x).
    for c in &cells {
        for config in RuntimeConfig::ZERO_COPY {
            let r = c.ratio_of(config);
            assert!(
                r > 1.0 && r < 3.0,
                "S{} {}T {config}: ratio {r:.2} outside QMCPack band",
                c.size.factor,
                c.threads
            );
        }
    }

    // Fig. 3 trend: more threads => better zero-copy ratio at small sizes.
    assert!(
        get(2, 8).ratio_of(RuntimeConfig::ImplicitZeroCopy)
            > get(2, 1).ratio_of(RuntimeConfig::ImplicitZeroCopy)
    );

    // Fig. 4 trend: bigger problem => smaller advantage (kernel time
    // dominates and there is less transfer cost to fold).
    let r_s2 = get(2, 8).ratio_of(RuntimeConfig::ImplicitZeroCopy);
    let r_s16 = get(16, 8).ratio_of(RuntimeConfig::ImplicitZeroCopy);
    let r_s128 = get(128, 8).ratio_of(RuntimeConfig::ImplicitZeroCopy);
    assert!(r_s2 > r_s16 && r_s16 > r_s128, "{r_s2} {r_s16} {r_s128}");

    // Eager Maps scales at a lower rate than the other two for small sizes,
    // and converges with Implicit Zero-Copy at S128 (paper §V-A.4).
    assert!(
        get(2, 8).ratio_of(RuntimeConfig::EagerMaps)
            < get(2, 8).ratio_of(RuntimeConfig::ImplicitZeroCopy)
    );
    let em_128 = get(128, 8).ratio_of(RuntimeConfig::EagerMaps);
    assert!(
        (em_128 / r_s128 - 1.0).abs() < 0.03,
        "EM {em_128} should converge with IZC {r_s128} at S128"
    );

    // USM and Implicit Z-C are identical for QMCPack (no globals).
    for c in &cells {
        let izc = c.ratio_of(RuntimeConfig::ImplicitZeroCopy);
        let usm = c.ratio_of(RuntimeConfig::UnifiedSharedMemory);
        assert!((izc - usm).abs() < 1e-9);
    }
}

#[test]
fn ep_overheads_have_paper_magnitudes() {
    // MI for zero-copy ep is "a few million microseconds" (seconds).
    let exp = ExperimentConfig::noiseless();
    let w = spec_suite(1.0)
        .into_iter()
        .find(|w| w.name() == "452.ep")
        .unwrap();
    let ms = measure_all_configs(w.as_ref(), 1, &exp).unwrap();
    let izc = ms
        .iter()
        .find(|m| m.config == RuntimeConfig::ImplicitZeroCopy)
        .unwrap();
    assert_eq!(
        order_of_magnitude_us(izc.report.ledger.mi_total()),
        "O(10^6)"
    );
    let copy = &ms[0];
    assert_eq!(
        order_of_magnitude_us(copy.report.ledger.mm_total()),
        "O(10^5)"
    );
    assert_eq!(copy.report.ledger.mi_total().as_nanos(), 0);
}
