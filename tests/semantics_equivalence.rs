//! Property: the four runtime configurations are OpenMP-semantically
//! equivalent. Random offload programs with real kernel bodies must leave
//! host memory in an identical state under every configuration.

use mi300a_zerocopy::hsa::Topology;
use mi300a_zerocopy::mem::{AddrRange, CostModel, VirtAddr};
use mi300a_zerocopy::omp::{MapEntry, OmpRuntime, RuntimeConfig, TargetRegion};
use mi300a_zerocopy::sim::VirtDuration;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A small random offload program description.
#[derive(Debug, Clone)]
struct Program {
    /// Number of f64 buffers.
    buffers: usize,
    /// Buffer length in f64 elements.
    len: usize,
    /// Steps; each step picks a src/dst pair and an operation.
    steps: Vec<(usize, usize, u8)>,
}

fn read_f64s(rt: &OmpRuntime, addr: VirtAddr, n: usize) -> Vec<f64> {
    let mut raw = vec![0u8; n * 8];
    rt.mem().cpu_read(addr, &mut raw).unwrap();
    raw.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn write_f64s(rt: &mut OmpRuntime, addr: VirtAddr, vals: &[f64]) {
    let raw: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
    rt.mem_mut().cpu_write(addr, &raw).unwrap();
}

/// Execute the program under `config`; return the final buffer contents.
fn execute(p: &Program, config: RuntimeConfig, seed: u64) -> Vec<Vec<f64>> {
    let mut rt = OmpRuntime::builder(CostModel::mi300a_no_thp(), Topology::default())
        .config(config)
        .build()
        .unwrap();
    let bytes = (p.len * 8) as u64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let bufs: Vec<VirtAddr> = (0..p.buffers)
        .map(|_| rt.host_alloc(0, bytes).unwrap())
        .collect();
    for &b in &bufs {
        let init: Vec<f64> = (0..p.len).map(|_| rng.gen_range(-8.0..8.0)).collect();
        write_f64s(&mut rt, b, &init);
    }

    for &(src, dst, op) in &p.steps {
        let (src, dst) = (src % p.buffers, dst % p.buffers);
        let sa = bufs[src];
        let da = bufs[dst];
        let n = p.len;
        let region = TargetRegion::new("step", VirtDuration::from_micros(5))
            .map(MapEntry::to(AddrRange::new(sa, bytes)))
            .map(MapEntry::tofrom(AddrRange::new(da, bytes)))
            .body(move |ctx| {
                let s = ctx.read_f64s(ctx.arg(0), n)?;
                let d = ctx.read_f64s(ctx.arg(1), n)?;
                let out: Vec<f64> = match op % 3 {
                    0 => s.iter().zip(&d).map(|(a, b)| a + b).collect(),
                    1 => s.iter().zip(&d).map(|(a, b)| a * 0.5 + b * 0.5).collect(),
                    _ => s.iter().zip(&d).map(|(a, b)| a.max(*b)).collect(),
                };
                ctx.write_f64s(ctx.arg(1), &out)
            });
        rt.target(0, region).unwrap();
    }

    let out = bufs.iter().map(|&b| read_f64s(&rt, b, p.len)).collect();
    assert_eq!(rt.live_mappings(), 0);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_configs_produce_identical_memory(
        buffers in 1usize..4,
        len in 1usize..64,
        steps in proptest::collection::vec((0usize..4, 0usize..4, 0u8..3), 0..12),
        seed in any::<u64>(),
    ) {
        // Same-buffer src/dst would alias `to` and `tofrom` maps of the same
        // range, which is a partial-overlap error; skip those pairs.
        let steps: Vec<_> = steps
            .into_iter()
            .filter(|(s, d, _)| s % buffers != d % buffers)
            .collect();
        let p = Program { buffers, len, steps };
        let reference = execute(&p, RuntimeConfig::LegacyCopy, seed);
        for config in [
            RuntimeConfig::UnifiedSharedMemory,
            RuntimeConfig::ImplicitZeroCopy,
            RuntimeConfig::EagerMaps,
        ] {
            let got = execute(&p, config, seed);
            prop_assert_eq!(&reference, &got, "config {} diverged", config);
        }
    }
}

/// Multi-threaded equivalence: two host threads drive disjoint buffer sets
/// concurrently (recording interleaves at the runtime level); results must
/// still match across configurations.
fn execute_two_threads(p: &Program, config: RuntimeConfig, seed: u64) -> Vec<Vec<f64>> {
    let mut rt = OmpRuntime::builder(CostModel::mi300a_no_thp(), Topology::default())
        .config(config)
        .threads(2)
        .build()
        .unwrap();
    let bytes = (p.len * 8) as u64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Two disjoint universes, one per thread.
    let bufs: Vec<Vec<VirtAddr>> = (0..2)
        .map(|t| {
            (0..p.buffers)
                .map(|_| rt.host_alloc(t, bytes).unwrap())
                .collect()
        })
        .collect();
    for universe in &bufs {
        for &b in universe {
            let init: Vec<f64> = (0..p.len).map(|_| rng.gen_range(-8.0..8.0)).collect();
            write_f64s(&mut rt, b, &init);
        }
    }
    for &(src, dst, op) in &p.steps {
        for (t, universe) in bufs.iter().enumerate() {
            let (src, dst) = (src % p.buffers, dst % p.buffers);
            let sa = universe[src];
            let da = universe[dst];
            let n = p.len;
            let region = TargetRegion::new("step", VirtDuration::from_micros(5))
                .map(MapEntry::to(AddrRange::new(sa, bytes)))
                .map(MapEntry::tofrom(AddrRange::new(da, bytes)))
                .body(move |ctx| {
                    let s = ctx.read_f64s(ctx.arg(0), n)?;
                    let d = ctx.read_f64s(ctx.arg(1), n)?;
                    let out: Vec<f64> = match op % 3 {
                        0 => s.iter().zip(&d).map(|(a, b)| a + b).collect(),
                        1 => s.iter().zip(&d).map(|(a, b)| a * 0.5 + b * 0.5).collect(),
                        _ => s.iter().zip(&d).map(|(a, b)| a.max(*b)).collect(),
                    };
                    ctx.write_f64s(ctx.arg(1), &out)
                });
            rt.target(t, region).unwrap();
        }
    }
    bufs.iter()
        .flat_map(|universe| universe.iter().map(|&b| read_f64s(&rt, b, p.len)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn two_thread_programs_are_equivalent_across_configs(
        buffers in 2usize..4,
        len in 1usize..32,
        steps in proptest::collection::vec((0usize..4, 0usize..4, 0u8..3), 0..8),
        seed in any::<u64>(),
    ) {
        let steps: Vec<_> = steps
            .into_iter()
            .filter(|(s, d, _)| s % buffers != d % buffers)
            .collect();
        let p = Program { buffers, len, steps };
        let reference = execute_two_threads(&p, RuntimeConfig::LegacyCopy, seed);
        for config in RuntimeConfig::ZERO_COPY {
            let got = execute_two_threads(&p, config, seed);
            prop_assert_eq!(&reference, &got, "config {} diverged", config);
        }
    }
}

#[test]
fn persistent_mapping_with_updates_is_equivalent() {
    // enter data + repeated kernels + explicit updates: the Copy staleness
    // path exercised deliberately, ending in the same state everywhere.
    let run = |config: RuntimeConfig| -> Vec<f64> {
        let mut rt = OmpRuntime::builder(CostModel::mi300a_no_thp(), Topology::default())
            .config(config)
            .build()
            .unwrap();
        const N: usize = 32;
        let bytes = (N * 8) as u64;
        let a = rt.host_alloc(0, bytes).unwrap();
        write_f64s(&mut rt, a, &vec![1.0; N]);
        let r = AddrRange::new(a, bytes);
        rt.target_enter_data(0, &[MapEntry::to(r)]).unwrap();
        for _ in 0..5 {
            let region = TargetRegion::new("double", VirtDuration::from_micros(3))
                .map(MapEntry::alloc(r))
                .body(move |ctx| {
                    let v = ctx.read_f64s(ctx.arg(0), N)?;
                    ctx.write_f64s(ctx.arg(0), &v.iter().map(|x| x * 2.0).collect::<Vec<_>>())
                });
            rt.target(0, region).unwrap();
        }
        rt.target_exit_data(0, &[MapEntry::from(r)], false).unwrap();
        read_f64s(&rt, a, N)
    };
    let expected = vec![32.0; 32];
    for config in RuntimeConfig::ALL {
        assert_eq!(run(config), expected, "{config}");
    }
}
