//! Failure injection: the runtime must surface errors cleanly (no panics,
//! no corrupted state) when programs misbehave or resources run out.

use mi300a_zerocopy::hsa::Topology;
use mi300a_zerocopy::mem::{AddrRange, CostModel, DiscreteSpec, MemError, SystemKind, VirtAddr};
use mi300a_zerocopy::omp::{MapEntry, OmpError, OmpRuntime, RuntimeConfig, TargetRegion};
use mi300a_zerocopy::sim::VirtDuration;

fn rt(config: RuntimeConfig) -> OmpRuntime {
    OmpRuntime::builder(CostModel::mi300a(), Topology::default())
        .config(config)
        .build()
        .unwrap()
}

#[test]
fn vram_exhaustion_surfaces_as_oom_and_state_survives() {
    // Discrete device with tiny VRAM: the map's pool allocation fails, the
    // error propagates, and the runtime remains usable.
    // Enough VRAM for device initialization (~16 x 2 MiB runtime buffers),
    // far too little for the 256 MiB map below.
    let spec = DiscreteSpec {
        vram_bytes: 64 << 20,
        link_bandwidth: 25_000_000_000,
        migrate_per_page: VirtDuration::from_micros(25),
    };
    let mut r = OmpRuntime::builder(CostModel::mi300a(), Topology::default())
        .config(RuntimeConfig::LegacyCopy)
        .system(SystemKind::Discrete(spec))
        .build()
        .unwrap();
    let a = r.host_alloc(0, 256 << 20).unwrap();
    let big = AddrRange::new(a, 256 << 20);
    r.mem_mut().host_touch(big).unwrap();
    let err = r.target_enter_data(0, &[MapEntry::to(big)]).unwrap_err();
    assert!(matches!(err, OmpError::Mem(MemError::OutOfMemory { .. })));
    // The failed map left no half-mapped entry behind.
    assert_eq!(r.live_mappings(), 0);
    // A smaller map still works afterwards.
    let small = AddrRange::new(a, 1 << 20);
    r.target_enter_data(0, &[MapEntry::to(small)]).unwrap();
    r.target_exit_data(0, &[MapEntry::alloc(small)], false)
        .unwrap();
    let report = r.finish();
    assert!(report.makespan > VirtDuration::ZERO);
}

#[test]
fn hbm_exhaustion_in_host_allocation() {
    let mut r = rt(RuntimeConfig::ImplicitZeroCopy);
    // The MI300A socket has 128 GiB; a 256 GiB request must fail cleanly.
    let err = r.host_alloc(0, 256 << 30).unwrap_err();
    assert!(matches!(err, OmpError::Mem(MemError::OutOfMemory { .. })));
    assert!(r.host_alloc(0, 1 << 20).is_ok());
}

#[test]
fn unmapping_never_mapped_data_errors() {
    let mut r = rt(RuntimeConfig::LegacyCopy);
    let a = r.host_alloc(0, 4096).unwrap();
    let err = r
        .target_exit_data(0, &[MapEntry::from(AddrRange::new(a, 4096))], false)
        .unwrap_err();
    assert!(matches!(err, OmpError::NotMapped { .. }));
}

#[test]
fn freeing_foreign_addresses_errors() {
    let mut r = rt(RuntimeConfig::LegacyCopy);
    let err = r.host_free(0, VirtAddr(0xdead_beef)).unwrap_err();
    assert!(matches!(err, OmpError::Mem(MemError::InvalidFree { .. })));
    // Device pointers cannot be host-freed.
    let d = r.omp_target_alloc(0, 4096).unwrap();
    assert!(r.host_free(0, d).is_err());
    assert!(r.omp_target_free(0, d).is_ok());
    assert!(r.omp_target_free(0, d).is_err()); // double free
}

#[test]
fn memcpy_outside_allocations_errors() {
    let mut r = rt(RuntimeConfig::LegacyCopy);
    let a = r.host_alloc(0, 4096).unwrap();
    let err = r.omp_target_memcpy(0, VirtAddr(0x42), a, 8).unwrap_err();
    assert!(matches!(
        err,
        OmpError::Mem(MemError::RangeOutsideAllocation { .. })
    ));
    // Overrunning the end of an allocation is also caught (allocations
    // round up to the 2 MiB THP page, so overrun past that).
    let b = r.host_alloc(0, 4096).unwrap();
    assert!(r.omp_target_memcpy(0, b, a, 3 << 20).is_err());
}

#[test]
fn kernel_failure_mid_run_leaves_consistent_counters() {
    // A fatal GPU fault inside a target leaves previously-entered data
    // environments intact; the program can unwind them.
    let mut r = rt(RuntimeConfig::LegacyCopy);
    let ok = r.host_alloc(0, 4096).unwrap();
    let ok_r = AddrRange::new(ok, 4096);
    r.mem_mut().host_touch(ok_r).unwrap();
    r.target_enter_data(0, &[MapEntry::to(ok_r)]).unwrap();

    let bad = r.host_alloc(0, 4096).unwrap();
    let err = r
        .target(
            0,
            TargetRegion::new("bad", VirtDuration::from_micros(1))
                .access(AddrRange::new(bad, 4096)), // unmapped raw access
        )
        .unwrap_err();
    assert!(matches!(err, OmpError::Mem(MemError::GpuFatalFault { .. })));

    // The earlier mapping is still live and can be exited normally.
    assert_eq!(r.live_mappings(), 1);
    r.target_exit_data(0, &[MapEntry::from(ok_r)], false)
        .unwrap();
    assert_eq!(r.live_mappings(), 0);
}

#[test]
fn zero_length_operations_are_rejected_or_trivial() {
    let mut r = rt(RuntimeConfig::ImplicitZeroCopy);
    assert!(matches!(
        r.host_alloc(0, 0),
        Err(OmpError::Mem(MemError::ZeroSizedAllocation))
    ));
    let a = r.host_alloc(0, 4096).unwrap();
    // Zero-byte memcpy is a no-op, not an error.
    r.omp_target_memcpy(0, a, a, 0).unwrap();
    let report = r.finish();
    assert_eq!(report.mem_stats.bytes_copied, 3 * 64 * 1024); // init only
}
