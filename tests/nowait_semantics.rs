//! `target nowait` / `taskwait`: asynchronous offload semantics and timing.
//!
//! QMCPack-class applications overlap kernels and host work inside a single
//! thread with deferred target tasks; this exercises the engine's async
//! service support end to end.

use mi300a_zerocopy::hsa::Topology;
use mi300a_zerocopy::mem::{AddrRange, CostModel};
use mi300a_zerocopy::omp::{MapEntry, OmpRuntime, RuntimeConfig, TargetRegion};
use mi300a_zerocopy::sim::VirtDuration;

fn rt(config: RuntimeConfig) -> OmpRuntime {
    OmpRuntime::builder(CostModel::mi300a(), Topology::default())
        .config(config)
        .build()
        .unwrap()
}

#[test]
fn nowait_overlaps_kernel_with_host_work() {
    // Sync: kernel (1ms) then host work (0.8ms) => ~1.8ms.
    // Nowait: they overlap => ~1ms.
    let run = |nowait: bool| {
        let mut r = rt(RuntimeConfig::ImplicitZeroCopy);
        let a = r.host_alloc(0, 1 << 20).unwrap();
        let range = AddrRange::new(a, 1 << 20);
        let kernel = VirtDuration::from_millis(1);
        let region = TargetRegion::new("k", kernel).map(MapEntry::tofrom(range));
        if nowait {
            r.target_nowait(0, region).unwrap();
        } else {
            r.target(0, region).unwrap();
        }
        r.host_compute(0, VirtDuration::from_micros(800));
        r.taskwait(0).unwrap();
        assert_eq!(r.pending_nowaits(), 0);
        r.finish().makespan
    };
    let sync = run(false);
    let asynced = run(true);
    assert!(
        asynced + VirtDuration::from_micros(700) < sync,
        "nowait {asynced} should hide host work behind the kernel (sync {sync})"
    );
}

#[test]
fn nowait_kernels_pipeline_on_the_gpu() {
    // Six 1ms kernels issued nowait from one thread: with 6 GPU slots they
    // run concurrently => makespan ~1ms, not ~6ms.
    let mut r = rt(RuntimeConfig::ImplicitZeroCopy);
    let mut ranges = Vec::new();
    for _ in 0..6 {
        let a = r.host_alloc(0, 1 << 20).unwrap();
        ranges.push(AddrRange::new(a, 1 << 20));
    }
    for &range in &ranges {
        r.target_nowait(
            0,
            TargetRegion::new("k", VirtDuration::from_millis(1)).map(MapEntry::tofrom(range)),
        )
        .unwrap();
    }
    r.taskwait(0).unwrap();
    let report = r.finish();
    assert!(
        report.makespan < VirtDuration::from_millis(2),
        "six nowait kernels should overlap: {}",
        report.makespan
    );
    // All six data environments were exited at taskwait (zero-copy: the
    // maps fold, but the mapping table must be empty).
    assert_eq!(report.ledger.copies, 0);
    assert_eq!(report.ledger.maps, 12); // 6 begins + 6 deferred ends
}

#[test]
fn deferred_exit_maps_copy_back_at_taskwait() {
    // Copy mode: the from-transfer of a nowait region happens at taskwait,
    // not at dispatch — host data is stale in between.
    let mut r = rt(RuntimeConfig::LegacyCopy);
    let a = r.host_alloc(0, 4096).unwrap();
    let range = AddrRange::new(a, 8);
    let raw_one: Vec<u8> = 1.0f64.to_le_bytes().to_vec();
    r.mem_mut().cpu_write(a, &raw_one).unwrap();
    r.target_nowait(
        0,
        TargetRegion::new("w", VirtDuration::from_micros(5))
            .map(MapEntry::tofrom(range))
            .body(|ctx| ctx.write_f64s(ctx.arg(0), &[42.0])),
    )
    .unwrap();
    // Before taskwait: host still sees the old value (deferred exit).
    let mut buf = [0u8; 8];
    r.mem().cpu_read(a, &mut buf).unwrap();
    assert_eq!(f64::from_le_bytes(buf), 1.0);
    r.taskwait(0).unwrap();
    r.mem().cpu_read(a, &mut buf).unwrap();
    assert_eq!(f64::from_le_bytes(buf), 42.0);
}

#[test]
fn nowait_works_under_all_configs_with_identical_results() {
    let run = |config: RuntimeConfig| -> f64 {
        let mut r = rt(config);
        let a = r.host_alloc(0, 4096).unwrap();
        let range = AddrRange::new(a, 8);
        r.mem_mut().cpu_write(a, &3.0f64.to_le_bytes()).unwrap();
        for _ in 0..4 {
            r.target_nowait(
                0,
                TargetRegion::new("inc", VirtDuration::from_micros(5))
                    .map(MapEntry::tofrom(range))
                    .body(|ctx| {
                        let v = ctx.read_f64s(ctx.arg(0), 1)?[0];
                        ctx.write_f64s(ctx.arg(0), &[v + 1.0])
                    }),
            )
            .unwrap();
            r.taskwait(0).unwrap();
        }
        let mut buf = [0u8; 8];
        r.mem().cpu_read(a, &mut buf).unwrap();
        f64::from_le_bytes(buf)
    };
    for config in RuntimeConfig::ALL {
        assert_eq!(run(config), 7.0, "{config}");
    }
}

#[test]
fn taskwait_with_nothing_pending_is_a_noop() {
    let mut r = rt(RuntimeConfig::ImplicitZeroCopy);
    r.taskwait(0).unwrap();
    assert_eq!(r.pending_nowaits(), 0);
}
